package timing

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
)

// EndpointSlack is the timing record of one endpoint: a net output that
// drives no further stage (or carries an explicit requirement).
type EndpointSlack struct {
	Net     string
	Output  string
	Arrival Interval
	// Required is the required arrival time, +Inf when unconstrained.
	Required float64
	// Slack is Required − Arrival.Max (the guaranteed margin), +Inf when
	// unconstrained. Negative means the bounds cannot certify the deadline.
	Slack   float64
	Verdict core.Verdict

	net int // graph index, for path backtracking
}

// Constrained reports whether the endpoint has a finite requirement.
func (e EndpointSlack) Constrained() bool { return !math.IsInf(e.Required, 1) }

// PathHop is one net along a critical path.
type PathHop struct {
	// Net is the net the path traverses; Output is the designated output it
	// leaves through.
	Net    string
	Output string
	// InputArrival brackets when the net's input is driven, OutputArrival
	// when the output crosses the threshold; NetDelay is the per-net
	// [TMin, TMax] between them.
	InputArrival  Interval
	NetDelay      Interval
	OutputArrival Interval
	// StageDelay is the intrinsic delay of the gate driving the next hop
	// (0 on the final hop).
	StageDelay float64
}

// Path is one critical path, hops ordered from a primary-input net to the
// endpoint.
type Path struct {
	Endpoint string
	Slack    float64
	Hops     []PathHop
}

// Report is the chip-level analysis of one design.
type Report struct {
	Design    string
	Threshold float64
	Nets      int
	Stages    int
	Levels    int
	// Endpoints are sorted worst slack first (unconstrained endpoints after
	// all constrained ones, by descending latest arrival).
	Endpoints []EndpointSlack
	// WNS is the worst (smallest) slack over constrained endpoints, +Inf
	// when nothing is constrained. TNS is the total negative slack.
	WNS float64
	TNS float64
	// Paths holds the K most critical paths, worst first.
	Paths []Path
}

// CountByVerdict tallies constrained endpoints per verdict.
func (r *Report) CountByVerdict() (passes, unknown, fails int) {
	for _, e := range r.Endpoints {
		if !e.Constrained() {
			continue
		}
		switch e.Verdict {
		case core.Passes:
			passes++
		case core.Fails:
			fails++
		default:
			unknown++
		}
	}
	return
}

// fmtG renders a float compactly, with +Inf as "-" (unconstrained).
func fmtG(v float64) string {
	if math.IsInf(v, 0) {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Summary renders the fixed-width chip report: a header, the endpoint table
// (worst slack first) and the critical paths.
func (r *Report) Summary() string {
	var b strings.Builder
	name := r.Design
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "design %s: %d nets, %d stages, %d levels, threshold %g\n",
		name, r.Nets, r.Stages, r.Levels, r.Threshold)
	p, u, f := r.CountByVerdict()
	fmt.Fprintf(&b, "endpoints: %d (%d pass, %d unknown, %d fail)   WNS %s   TNS %s\n\n",
		len(r.Endpoints), p, u, f, fmtG(r.WNS), fmtG(r.TNS))
	fmt.Fprintf(&b, "%-12s %-10s %12s %12s %12s %12s %10s\n",
		"net", "output", "arr.min", "arr.max", "required", "slack", "verdict")
	for _, e := range r.Endpoints {
		fmt.Fprintf(&b, "%-12s %-10s %12s %12s %12s %12s %10s\n",
			e.Net, e.Output, fmtG(e.Arrival.Min), fmtG(e.Arrival.Max),
			fmtG(e.Required), fmtG(e.Slack), e.Verdict)
	}
	for i, p := range r.Paths {
		fmt.Fprintf(&b, "\ncritical path %d -> %s (slack %s):\n", i+1, p.Endpoint, fmtG(p.Slack))
		for _, h := range p.Hops {
			fmt.Fprintf(&b, "  %-12s %-10s in [%s, %s]  +net [%s, %s]  out [%s, %s]",
				h.Net, h.Output,
				fmtG(h.InputArrival.Min), fmtG(h.InputArrival.Max),
				fmtG(h.NetDelay.Min), fmtG(h.NetDelay.Max),
				fmtG(h.OutputArrival.Min), fmtG(h.OutputArrival.Max))
			if h.StageDelay > 0 {
				fmt.Fprintf(&b, "  +gate %s", fmtG(h.StageDelay))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// WriteCSV emits the endpoint table as CSV (header plus one row per
// endpoint, worst slack first). Unconstrained endpoints leave required and
// slack empty.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"net", "output", "arrival_min", "arrival_max", "required", "slack", "verdict"}); err != nil {
		return fmt.Errorf("timing: csv: %w", err)
	}
	g := func(v float64) string {
		if math.IsInf(v, 0) {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for _, e := range r.Endpoints {
		row := []string{
			e.Net, e.Output,
			g(e.Arrival.Min), g(e.Arrival.Max), g(e.Required), g(e.Slack),
			e.Verdict.String(),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("timing: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Wire shapes: +Inf is not representable in JSON, so required and slack ride
// as pointers that are nil for unconstrained endpoints.
type jsonEndpoint struct {
	Net      string   `json:"net"`
	Output   string   `json:"output"`
	Arrival  Interval `json:"arrival"`
	Required *float64 `json:"required,omitempty"`
	Slack    *float64 `json:"slack,omitempty"`
	Verdict  string   `json:"verdict"`
}

type jsonHop struct {
	Net           string   `json:"net"`
	Output        string   `json:"output"`
	InputArrival  Interval `json:"inputArrival"`
	NetDelay      Interval `json:"netDelay"`
	OutputArrival Interval `json:"outputArrival"`
	StageDelay    float64  `json:"stageDelay,omitempty"`
}

type jsonPath struct {
	Endpoint string    `json:"endpoint"`
	Slack    *float64  `json:"slack,omitempty"`
	Hops     []jsonHop `json:"hops"`
}

type jsonReport struct {
	Design    string         `json:"design,omitempty"`
	Threshold float64        `json:"threshold"`
	Nets      int            `json:"nets"`
	Stages    int            `json:"stages"`
	Levels    int            `json:"levels"`
	WNS       *float64       `json:"wns,omitempty"`
	TNS       float64        `json:"tns"`
	Passes    int            `json:"passes"`
	Unknown   int            `json:"unknown"`
	Fails     int            `json:"fails"`
	Endpoints []jsonEndpoint `json:"endpoints"`
	Paths     []jsonPath     `json:"paths,omitempty"`
}

// finitePtr maps +Inf (unconstrained) to nil for the JSON wire form.
func finitePtr(v float64) *float64 {
	if math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// wire converts the report to its JSON shape.
func (r *Report) wire() jsonReport {
	p, u, f := r.CountByVerdict()
	out := jsonReport{
		Design: r.Design, Threshold: r.Threshold,
		Nets: r.Nets, Stages: r.Stages, Levels: r.Levels,
		WNS: finitePtr(r.WNS), TNS: r.TNS,
		Passes: p, Unknown: u, Fails: f,
	}
	for _, e := range r.Endpoints {
		out.Endpoints = append(out.Endpoints, jsonEndpoint{
			Net: e.Net, Output: e.Output, Arrival: e.Arrival,
			Required: finitePtr(e.Required), Slack: finitePtr(e.Slack),
			Verdict: e.Verdict.String(),
		})
	}
	for _, path := range r.Paths {
		jp := jsonPath{Endpoint: path.Endpoint, Slack: finitePtr(path.Slack)}
		for _, h := range path.Hops {
			jp.Hops = append(jp.Hops, jsonHop{
				Net: h.Net, Output: h.Output,
				InputArrival: h.InputArrival, NetDelay: h.NetDelay,
				OutputArrival: h.OutputArrival, StageDelay: h.StageDelay,
			})
		}
		out.Paths = append(out.Paths, jp)
	}
	return out
}

// WriteJSON emits the report as indented JSON with a stable schema.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.wire()); err != nil {
		return fmt.Errorf("timing: json: %w", err)
	}
	return nil
}

// MarshalJSON makes the report JSON-safe anywhere it is embedded (the
// rcserve design endpoints embed it in their envelopes).
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.wire())
}
