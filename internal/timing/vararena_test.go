package timing

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/randnet"
	"repro/internal/rctree"
)

// scaleTestDesign rebuilds every tree of d with per-net multiplicative R/C
// factors — the independent reference the VarArena sweep must reproduce.
func scaleTestDesign(t *testing.T, d *netlist.Design, rf, cf []float64) *netlist.Design {
	t.Helper()
	out := &netlist.Design{Name: d.Name, Stages: d.Stages, Requires: d.Requires}
	for i := range d.Nets {
		tr := d.Nets[i].Tree
		b := rctree.NewBuilder(tr.Name(rctree.Root))
		ids := map[rctree.NodeID]rctree.NodeID{rctree.Root: rctree.Root}
		tr.Walk(func(id rctree.NodeID) {
			if id == rctree.Root {
				if c := tr.NodeCap(id); c > 0 {
					b.Capacitor(rctree.Root, c*cf[i])
				}
				return
			}
			kind, r, c := tr.Edge(id)
			switch kind {
			case rctree.EdgeResistor:
				ids[id] = b.Resistor(ids[tr.Parent(id)], tr.Name(id), r*rf[i])
			case rctree.EdgeLine:
				ids[id] = b.Line(ids[tr.Parent(id)], tr.Name(id), r*rf[i], c*cf[i])
			default:
				t.Fatalf("unexpected edge kind at %q", tr.Name(id))
			}
			if nc := tr.NodeCap(id); nc > 0 {
				b.Capacitor(ids[id], nc*cf[i])
			}
		})
		for _, o := range tr.Outputs() {
			b.Output(ids[o])
		}
		st, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		out.Nets = append(out.Nets, netlist.DesignNet{Name: d.Nets[i].Name, Tree: st})
	}
	return out
}

// TestVarArenaNominalMatchesAnalyze: with all factors 1 the variation view
// must reproduce the full analysis bit for bit — same endpoints, same
// arrivals, same slacks.
func TestVarArenaNominalMatchesAnalyze(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := randnet.Design(rng, randnet.DefaultDesignConfig(4, 3))
	g, err := NewGraph(d)
	if err != nil {
		t.Fatal(err)
	}
	const th, req = 0.6, 400.0
	rep, err := g.Analyze(context.Background(), Options{Threshold: th, Required: req, K: -1})
	if err != nil {
		t.Fatal(err)
	}
	va, err := g.VarArena(th, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := va.SetFactors(1, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := va.Propagate(context.Background()); err != nil {
		t.Fatal(err)
	}
	eps := va.Endpoints()
	if len(eps) != len(rep.Endpoints) {
		t.Fatalf("VarArena has %d endpoints, report has %d", len(eps), len(rep.Endpoints))
	}
	byKey := map[[2]string]EndpointSlack{}
	for _, e := range rep.Endpoints {
		byKey[[2]string{e.Net, e.Output}] = e
	}
	for _, ep := range eps {
		want, ok := byKey[[2]string{ep.Net, ep.Output}]
		if !ok {
			t.Fatalf("endpoint %s/%s not in report", ep.Net, ep.Output)
		}
		if ep.Required != want.Required {
			t.Errorf("%s/%s required = %g, report %g", ep.Net, ep.Output, ep.Required, want.Required)
		}
		if got := va.Arrival(ep.Slot); got != want.Arrival {
			t.Errorf("%s/%s arrival = %+v, report %+v", ep.Net, ep.Output, got, want.Arrival)
		}
		if got := va.Slack(ep); got != want.Slack && !(math.IsInf(got, 1) && math.IsInf(want.Slack, 1)) {
			t.Errorf("%s/%s slack = %g, report %g", ep.Net, ep.Output, got, want.Slack)
		}
	}
}

// TestVarArenaScaledMatchesScaledDesign: arbitrary global + per-net factors
// applied through SetFactors must match a from-scratch analysis of a design
// whose element values were explicitly rebuilt with those factors. This is
// the in-place-sweep soundness proof the mcd property test builds on.
func TestVarArenaScaledMatchesScaledDesign(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := randnet.Design(rng, randnet.DefaultDesignConfig(5, 2))
	g, err := NewGraph(d)
	if err != nil {
		t.Fatal(err)
	}
	const th, req = 0.55, 600.0
	va, err := g.VarArena(th, req)
	if err != nil {
		t.Fatal(err)
	}
	const rScale, cScale = 1.15, 0.9
	rNet := make([]float64, len(d.Nets))
	cNet := make([]float64, len(d.Nets))
	frng := rand.New(rand.NewSource(5))
	for i := range rNet {
		rNet[i] = 1 + 0.2*frng.NormFloat64()
		cNet[i] = 1 + 0.2*frng.NormFloat64()
	}
	if err := va.SetFactors(rScale, cScale, rNet, cNet); err != nil {
		t.Fatal(err)
	}
	if err := va.Propagate(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Reference: rebuild the trees with the combined factors baked in.
	rf := make([]float64, len(d.Nets))
	cf := make([]float64, len(d.Nets))
	for i := range rf {
		rf[i] = rScale * rNet[i]
		cf[i] = cScale * cNet[i]
	}
	rep, err := Analyze(context.Background(), scaleTestDesign(t, d, rf, cf), Options{Threshold: th, Required: req, K: -1})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]string]EndpointSlack{}
	for _, e := range rep.Endpoints {
		byKey[[2]string{e.Net, e.Output}] = e
	}
	for _, ep := range va.Endpoints() {
		want := byKey[[2]string{ep.Net, ep.Output}]
		got := va.Arrival(ep.Slot)
		if math.Abs(got.Min-want.Arrival.Min) > 1e-9 || math.Abs(got.Max-want.Arrival.Max) > 1e-9 {
			t.Errorf("%s/%s arrival = %+v, scaled-design analysis %+v", ep.Net, ep.Output, got, want.Arrival)
		}
		if s := va.Slack(ep); !math.IsInf(s, 1) && math.Abs(s-want.Slack) > 1e-9 {
			t.Errorf("%s/%s slack = %g, scaled-design analysis %g", ep.Net, ep.Output, s, want.Slack)
		}
	}
}

// TestVarArenaCloneIndependence: clones propagate different factors without
// disturbing each other or the parent, and resetting to nominal recovers the
// baseline — the reuse pattern of a Monte Carlo worker loop.
func TestVarArenaCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randnet.Design(rng, randnet.DefaultDesignConfig(3, 2))
	g, err := NewGraph(d)
	if err != nil {
		t.Fatal(err)
	}
	va, err := g.VarArena(0.5, 200)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := va.SetFactors(1, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := va.Propagate(ctx); err != nil {
		t.Fatal(err)
	}
	eps := va.Endpoints()
	base := make([]float64, len(eps))
	for i, ep := range eps {
		base[i] = va.Arrival(ep.Slot).Max
	}
	cl := va.Clone()
	if err := cl.SetFactors(2, 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Propagate(ctx); err != nil {
		t.Fatal(err)
	}
	for i, ep := range eps {
		if got := cl.Arrival(ep.Slot).Max; got <= base[i] {
			t.Errorf("clone at 2x factors: endpoint %d arrival %g not above base %g", i, got, base[i])
		}
		// Parent state untouched by the clone's sweep.
		if got := va.Arrival(ep.Slot).Max; got != base[i] {
			t.Errorf("parent arrival %g changed by clone propagation (want %g)", got, base[i])
		}
	}
	// Back to nominal on the clone: must land exactly on the parent baseline.
	if err := cl.SetFactors(1, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Propagate(ctx); err != nil {
		t.Fatal(err)
	}
	for i, ep := range eps {
		if got := cl.Arrival(ep.Slot).Max; got != base[i] {
			t.Errorf("clone reset to nominal: endpoint %d arrival %g, want %g", i, got, base[i])
		}
	}
	// Factor-slice length validation.
	if err := va.SetFactors(1, 1, make([]float64, 1), nil); err == nil && len(d.Nets) != 1 {
		t.Error("short rNet accepted")
	}
	if _, err := g.VarArena(1.5, 0); err == nil {
		t.Error("threshold 1.5 accepted")
	}
}
