package timing

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rctree"
)

// Scheduler selects how a parallel arena propagation distributes nets across
// workers. Sequential analyses (Options.Sequential or Workers == 1) bypass
// the scheduler entirely.
type Scheduler int

const (
	// SchedAuto picks the default parallel schedule (work-stealing).
	SchedAuto Scheduler = iota
	// SchedLevelBarrier splits each topological level across the workers and
	// barriers between levels — simple, but a deep design with narrow levels
	// serializes on the barriers.
	SchedLevelBarrier
	// SchedWorkSteal drops the level barriers: each net carries an atomic
	// remaining-fanin counter, a finished net releases exactly the successors
	// that became ready, and workers pop their own deque LIFO (chasing a
	// fanout cone depth-first for locality) while idle workers steal FIFO
	// from victims. Narrow-but-deep designs keep every worker busy as long
	// as any independent cone remains.
	SchedWorkSteal
)

// String names the schedule for telemetry labels and logs.
func (s Scheduler) String() string {
	switch s {
	case SchedAuto:
		return "auto"
	case SchedLevelBarrier:
		return "levelbarrier"
	case SchedWorkSteal:
		return "worksteal"
	}
	return fmt.Sprintf("scheduler(%d)", int(s))
}

// propScratch holds the reusable allocations of parallel propagation: one
// characteristic-times scratch per worker, the remaining-fanin counters, and
// the per-worker deques. Reusing it across runs keeps repeated propagation
// (benchmarks, server steady state) off the allocator.
type propScratch struct {
	scratch   []rctree.Scratch
	remaining []int32
	deques    []workDeque
}

func (a *designArena) newPropScratch(workers int) *propScratch {
	ps := &propScratch{
		scratch:   make([]rctree.Scratch, workers),
		remaining: make([]int32, a.nets),
		deques:    make([]workDeque, workers),
	}
	return ps
}

// workDeque is a mutex-guarded per-worker deque. Nets are coarse work items
// (one full per-net bound computation each), so lock traffic is negligible
// next to the compute; the mutex keeps the scheduler trivially race-clean.
type workDeque struct {
	mu    sync.Mutex
	items []int32
}

func (d *workDeque) push(i int32) {
	d.mu.Lock()
	d.items = append(d.items, i)
	d.mu.Unlock()
}

// pop removes LIFO — the owner descends the cone it just opened.
func (d *workDeque) pop() (int32, bool) {
	d.mu.Lock()
	n := len(d.items)
	if n == 0 {
		d.mu.Unlock()
		return 0, false
	}
	i := d.items[n-1]
	d.items = d.items[:n-1]
	d.mu.Unlock()
	return i, true
}

// steal removes FIFO — thieves take the oldest (widest) pending work.
func (d *workDeque) steal() (int32, bool) {
	d.mu.Lock()
	if len(d.items) == 0 {
		d.mu.Unlock()
		return 0, false
	}
	i := d.items[0]
	d.items = d.items[1:]
	d.mu.Unlock()
	return i, true
}

// propagate dispatches one full propagation over the arena. ps may be nil
// for one-shot analyses; reuse it (sized for the same worker count) to keep
// steady-state runs allocation-lean. Results are bit-identical across
// schedulers and worker counts: each net's computation is a pure function of
// its drivers' final state.
func (a *designArena) propagate(ctx context.Context, st *arenaState, th float64, sched Scheduler, workers int, ps *propScratch) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.nets {
		workers = a.nets
	}
	if workers <= 1 {
		var s *rctree.Scratch
		if ps != nil && len(ps.scratch) > 0 {
			s = &ps.scratch[0]
		} else {
			s = &rctree.Scratch{}
		}
		return a.propagateSeq(ctx, st, th, s)
	}
	if ps == nil || len(ps.scratch) < workers {
		ps = a.newPropScratch(workers)
	}
	if sched == SchedLevelBarrier {
		return a.propagateLevels(ctx, st, th, workers, ps)
	}
	return a.propagateSteal(ctx, st, th, workers, ps)
}

// propErr collects the first error across workers and flags abort.
type propErr struct {
	abort atomic.Bool
	once  sync.Once
	err   error
}

func (p *propErr) set(err error) {
	p.once.Do(func() { p.err = err })
	p.abort.Store(true)
}

// propagateLevels computes each level with a worker pool behind an atomic
// claim counter, barriering between levels.
func (a *designArena) propagateLevels(ctx context.Context, st *arenaState, th float64, workers int, ps *propScratch) error {
	var pe propErr
	for l := 0; l+1 < len(a.levelOff); l++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		level := a.order[a.levelOff[l]:a.levelOff[l+1]]
		w := workers
		if w > len(level) {
			w = len(level)
		}
		if w <= 1 {
			for _, i := range level {
				if err := a.computeNet(st, th, i, &ps.scratch[0]); err != nil {
					return err
				}
			}
			continue
		}
		var next atomic.Int32
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(s *rctree.Scratch) {
				defer wg.Done()
				for !pe.abort.Load() {
					k := int(next.Add(1)) - 1
					if k >= len(level) {
						return
					}
					if err := a.computeNet(st, th, level[k], s); err != nil {
						pe.set(err)
						return
					}
				}
			}(&ps.scratch[wi])
		}
		wg.Wait()
		if pe.abort.Load() {
			return pe.err
		}
	}
	return nil
}

// propagateSteal runs the barrier-free schedule: per-net atomic
// remaining-fanin counters gate readiness, finished nets release their
// fanouts into the finisher's own deque, and idle workers steal.
func (a *designArena) propagateSteal(ctx context.Context, st *arenaState, th float64, workers int, ps *propScratch) error {
	// Mid-flight cancellation is caught in the idle loop; a context canceled
	// before entry would otherwise slip past workers that never go idle.
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := 0; i < a.nets; i++ {
		ps.remaining[i] = a.finOff[i+1] - a.finOff[i]
	}
	for w := range ps.deques[:workers] {
		ps.deques[w].items = ps.deques[w].items[:0]
	}
	// Seed the primary-input nets round-robin so every worker starts with
	// an independent cone.
	seeded := 0
	for i := 0; i < a.nets; i++ {
		if ps.remaining[i] == 0 {
			ps.deques[seeded%workers].push(int32(i))
			seeded++
		}
	}
	var (
		pe        propErr
		completed atomic.Int32
		wg        sync.WaitGroup
	)
	total := int32(a.nets)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := &ps.scratch[w]
			own := &ps.deques[w]
			for {
				if pe.abort.Load() {
					return
				}
				i, ok := own.pop()
				if !ok {
					for v := 1; v < workers && !ok; v++ {
						i, ok = ps.deques[(w+v)%workers].steal()
					}
				}
				if !ok {
					if completed.Load() == total {
						return
					}
					if err := ctx.Err(); err != nil {
						pe.set(err)
						return
					}
					runtime.Gosched()
					continue
				}
				if err := a.computeNet(st, th, i, s); err != nil {
					pe.set(err)
					return
				}
				for e := a.foutOff[i]; e < a.foutOff[i+1]; e++ {
					j := a.foutTo[e]
					if atomic.AddInt32(&ps.remaining[j], -1) == 0 {
						own.push(j)
					}
				}
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if pe.abort.Load() {
		return pe.err
	}
	return nil
}
