package timing

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/rctree"
)

// designArena is the flat SoA/CSR compute core of a timing graph: every
// net's RC tree flattened into one concatenated node arena, designated
// outputs assigned contiguous global slots, stage fanin/fanout encoded as CSR
// edge ranges with output-name lookups resolved to slot indices once at
// build, and the levelized net order computed once. All slices are immutable
// after newDesignArena; per-analysis state lives in arenaState, so one arena
// serves any number of concurrent propagations.
//
// Memory layout (immutable topology):
//
//	nodes   net 0 nodes | net 1 nodes | ...        nodeOff CSR per net
//	        parent/kind/edgeR/edgeC/nodeC          one flat slice per field,
//	                                               parent indices net-local
//	slots   net 0 outputs | net 1 outputs | ...    outOff CSR per net
//	        outLocal (node index), outName
//	fanin   finOff CSR per net; per edge the driver net, the driver's global
//	        output slot, and the stage delay
//	fanout  foutOff CSR per net; per edge the successor net index
//	order   levelized net order with levelOff per level
type designArena struct {
	nets int
	// concatenated node arena; net i's nodes are [nodeOff[i], nodeOff[i+1])
	nodeOff []int32
	parent  []int32 // net-local parent index, -1 at each net's root
	kind    []uint8
	edgeR   []float64
	edgeC   []float64
	nodeC   []float64
	maxNet  int // widest net, for scratch sizing
	// output slots
	outOff   []int32 // len nets+1
	outLocal []int32 // net-local node index per slot
	outName  []string
	// fanin CSR per net
	finOff    []int32
	finDriver []int32
	finSlot   []int32 // global output slot of the driver the edge taps
	finDelay  []float64
	// fanout CSR per net (successor nets, one entry per stage edge)
	foutOff []int32
	foutTo  []int32
	// levelized order: order[levelOff[l]:levelOff[l+1]] is level l
	levelOff []int32
	order    []int32
	netName  []string // error reporting
}

// arenaState is the mutable working state of one propagation over a
// designArena: flat per-slot delay and arrival intervals plus per-net input
// intervals and worst-fanin indices. Allocate once with newState and reuse;
// propagation rewrites every element, so no reset pass is needed.
type arenaState struct {
	delayMin, delayMax []float64 // per slot
	arrMin, arrMax     []float64 // per slot
	inMin, inMax       []float64 // per net
	worst              []int32   // per net: local fanin edge index, -1 at PIs
}

// newDesignArena flattens a resolved graph. Output-name lookups happen here,
// once, so the propagation hot path is pure index arithmetic.
func newDesignArena(g *Graph) (*designArena, error) {
	nets := len(g.nodes)
	a := &designArena{
		nets:    nets,
		nodeOff: make([]int32, nets+1),
		outOff:  make([]int32, nets+1),
		netName: make([]string, nets),
	}
	// Node arena.
	total := 0
	for i := range g.nodes {
		a.nodeOff[i] = int32(total)
		n := g.nodes[i].tree.NumNodes()
		total += n
		if n > a.maxNet {
			a.maxNet = n
		}
		a.netName[i] = g.nodes[i].name
	}
	a.nodeOff[nets] = int32(total)
	a.parent = make([]int32, total)
	a.kind = make([]uint8, total)
	a.edgeR = make([]float64, total)
	a.edgeC = make([]float64, total)
	a.nodeC = make([]float64, total)
	for i := range g.nodes {
		t := g.nodes[i].tree
		base := int(a.nodeOff[i])
		for j := 0; j < t.NumNodes(); j++ {
			id := rctree.NodeID(j)
			kind, r, c := t.Edge(id)
			a.parent[base+j] = int32(t.Parent(id))
			a.kind[base+j] = uint8(kind)
			a.edgeR[base+j] = r
			a.edgeC[base+j] = c
			a.nodeC[base+j] = t.NodeCap(id)
		}
	}
	// Output slots, in designation order (the same order treeOutputNames
	// reports), plus a per-net name→slot index for fanin resolution.
	slotOf := make([]map[string]int32, nets)
	for i := range g.nodes {
		a.outOff[i] = int32(len(a.outLocal))
		t := g.nodes[i].tree
		slotOf[i] = make(map[string]int32, len(t.Outputs()))
		for _, o := range t.Outputs() {
			slotOf[i][t.Name(o)] = int32(len(a.outLocal))
			a.outLocal = append(a.outLocal, int32(o))
			a.outName = append(a.outName, t.Name(o))
		}
	}
	a.outOff[nets] = int32(len(a.outLocal))
	// Fanin and fanout CSR, preserving the graph's edge order so the worst
	// fanin index and the hull accumulation order match the pointer core.
	a.finOff = make([]int32, nets+1)
	a.foutOff = make([]int32, nets+1)
	for i := range g.nodes {
		a.finOff[i] = int32(len(a.finDriver))
		for _, e := range g.nodes[i].fanin {
			slot, ok := slotOf[e.driver][e.output]
			if !ok {
				return nil, fmt.Errorf("timing: stage taps %q, which is not a designated output of net %q", e.output, g.nodes[e.driver].name)
			}
			a.finDriver = append(a.finDriver, int32(e.driver))
			a.finSlot = append(a.finSlot, slot)
			a.finDelay = append(a.finDelay, e.delay)
		}
	}
	a.finOff[nets] = int32(len(a.finDriver))
	for i := range g.nodes {
		a.foutOff[i] = int32(len(a.foutTo))
		for _, e := range g.nodes[i].fanout {
			a.foutTo = append(a.foutTo, int32(e.to))
		}
	}
	a.foutOff[nets] = int32(len(a.foutTo))
	// Levelized order.
	a.levelOff = make([]int32, len(g.levels)+1)
	a.order = make([]int32, 0, nets)
	for l, level := range g.levels {
		a.levelOff[l] = int32(len(a.order))
		for _, i := range level {
			a.order = append(a.order, int32(i))
		}
	}
	a.levelOff[len(g.levels)] = int32(len(a.order))
	return a, nil
}

// newState allocates a fresh (uninitialized) propagation state sized for a.
func (a *designArena) newState() *arenaState {
	slots := len(a.outLocal)
	return &arenaState{
		delayMin: make([]float64, slots),
		delayMax: make([]float64, slots),
		arrMin:   make([]float64, slots),
		arrMax:   make([]float64, slots),
		inMin:    make([]float64, a.nets),
		inMax:    make([]float64, a.nets),
		worst:    make([]int32, a.nets),
	}
}

// computeNet fully times net i: gather the input interval from the (already
// final) driver slots, recompute each output slot's delay interval from the
// flat tree, and write the output arrivals. Allocation-free once s has grown
// to a.maxNet.
func (a *designArena) computeNet(st *arenaState, th float64, i int32, s *rctree.Scratch) error {
	f0, f1 := a.finOff[i], a.finOff[i+1]
	var inMin, inMax float64
	worst := int32(-1)
	for e := f0; e < f1; e++ {
		slot := a.finSlot[e]
		cMin := st.arrMin[slot] + a.finDelay[e]
		cMax := st.arrMax[slot] + a.finDelay[e]
		if e == f0 {
			inMin, inMax, worst = cMin, cMax, 0
			continue
		}
		if cMax > inMax {
			worst = e - f0
			inMax = cMax
		}
		if cMin < inMin {
			inMin = cMin
		}
	}
	st.inMin[i], st.inMax[i], st.worst[i] = inMin, inMax, worst
	base := a.nodeOff[i]
	end := a.nodeOff[i+1]
	parent := a.parent[base:end]
	kind := a.kind[base:end]
	edgeR := a.edgeR[base:end]
	edgeC := a.edgeC[base:end]
	nodeC := a.nodeC[base:end]
	for sl := a.outOff[i]; sl < a.outOff[i+1]; sl++ {
		tm, err := rctree.TimesFlat(parent, kind, edgeR, edgeC, nodeC, int(a.outLocal[sl]), s)
		if err != nil {
			return fmt.Errorf("timing: net %q output %q: %w", a.netName[i], a.outName[sl], err)
		}
		b, err := core.Eval(tm)
		if err != nil {
			return fmt.Errorf("timing: net %q output %q: %w", a.netName[i], a.outName[sl], err)
		}
		dMin, dMax := b.TMin(th), b.TMax(th)
		st.delayMin[sl], st.delayMax[sl] = dMin, dMax
		st.arrMin[sl], st.arrMax[sl] = inMin+dMin, inMax+dMax
	}
	return nil
}

// propagateSeq runs the full levelized sweep on the caller's goroutine. With
// a pre-grown scratch the steady-state pass performs zero allocations — the
// alloc-assertion test pins this down.
func (a *designArena) propagateSeq(ctx context.Context, st *arenaState, th float64, s *rctree.Scratch) error {
	for l := 0; l+1 < len(a.levelOff); l++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, i := range a.order[a.levelOff[l]:a.levelOff[l+1]] {
			if err := a.computeNet(st, th, i, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// netTimings materializes the flat state into the per-net map form the
// report assembly and Session machinery consume. This runs once per analysis,
// off the propagation hot path.
func (a *designArena) netTimings(st *arenaState) []netTiming {
	state := make([]netTiming, a.nets)
	for i := 0; i < a.nets; i++ {
		nt := &state[i]
		nt.input = Interval{st.inMin[i], st.inMax[i]}
		nt.worst = int(st.worst[i])
		n := int(a.outOff[i+1] - a.outOff[i])
		nt.delay = make(map[string]Interval, n)
		nt.out = make(map[string]Interval, n)
		for sl := a.outOff[i]; sl < a.outOff[i+1]; sl++ {
			name := a.outName[sl]
			nt.delay[name] = Interval{st.delayMin[sl], st.delayMax[sl]}
			nt.out[name] = Interval{st.arrMin[sl], st.arrMax[sl]}
		}
	}
	return state
}
