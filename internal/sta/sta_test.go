package sta

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mos"
	"repro/internal/rctree"
	"repro/internal/sim"
)

func fanoutNet(t *testing.T) *rctree.Tree {
	t.Helper()
	tr, err := mos.FanoutNet(mos.Superbuffer(),
		[]float64{90, 180, 540},
		[]float64{0.005, 0.01, 0.03},
		[]mos.Load{{Name: "g1", C: 0.013}, {Name: "g2", C: 0.013}, {Name: "g3", C: 0.013}})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAnalyzeBasics(t *testing.T) {
	tr := fanoutNet(t)
	report, err := Analyze([]Net{{Name: "net1", Tree: tr, Threshold: 0.7, Deadline: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outputs) != 3 {
		t.Fatalf("outputs = %d, want 3", len(report.Outputs))
	}
	for _, o := range report.Outputs {
		if o.TMin > o.TMax {
			t.Errorf("%s: TMin %g > TMax %g", o.Output, o.TMin, o.TMax)
		}
		if math.Abs(o.Slack-(1000-o.TMax)) > 1e-12 {
			t.Errorf("%s: slack %g != deadline - TMax", o.Output, o.Slack)
		}
		if math.Abs(o.OptimisticSlack-(1000-o.TMin)) > 1e-12 {
			t.Errorf("%s: optimistic slack wrong", o.Output)
		}
		if math.Abs(o.Elmore-o.Times.TD) > 1e-9*(1+o.Times.TD) {
			t.Errorf("%s: Elmore %g != TD %g", o.Output, o.Elmore, o.Times.TD)
		}
	}
}

func TestCriticalOrdering(t *testing.T) {
	tr := fanoutNet(t)
	report, err := Analyze([]Net{{Name: "net1", Tree: tr, Threshold: 0.7, Deadline: 500}})
	if err != nil {
		t.Fatal(err)
	}
	crit := report.Critical()
	if crit[0].Output != "g3" {
		t.Errorf("worst-slack output = %q, want g3 (longest branch)", crit[0].Output)
	}
	for i := 1; i < len(crit); i++ {
		if crit[i].Slack < crit[i-1].Slack {
			t.Error("Critical not sorted by slack")
		}
	}
}

func TestVerdictsAgainstDeadline(t *testing.T) {
	tr := fanoutNet(t)
	// Find the g3 bounds to construct deadlines on each side.
	base, err := Analyze([]Net{{Name: "n", Tree: tr, Threshold: 0.7, Deadline: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var g3 OutputReport
	for _, o := range base.Outputs {
		if o.Output == "g3" {
			g3 = o
		}
	}
	cases := []struct {
		deadline float64
		want     core.Verdict
	}{
		{g3.TMax * 1.01, core.Passes},
		{g3.TMin * 0.5, core.Fails},
		{(g3.TMin + g3.TMax) / 2, core.Unknown},
	}
	for _, tc := range cases {
		rep, err := Analyze([]Net{{Name: "n", Tree: tr, Threshold: 0.7, Deadline: tc.deadline}})
		if err != nil {
			t.Fatal(err)
		}
		var got core.Verdict
		for _, o := range rep.Outputs {
			if o.Output == "g3" {
				got = o.Verdict
			}
		}
		if got != tc.want {
			t.Errorf("deadline %g: verdict %v, want %v", tc.deadline, got, tc.want)
		}
	}
}

func TestWorstVerdictAndCounts(t *testing.T) {
	tr := fanoutNet(t)
	// Deadline between g1's TMax and g3's TMin region: mixed verdicts.
	rep, err := Analyze([]Net{{Name: "n", Tree: tr, Threshold: 0.7, Deadline: 120}})
	if err != nil {
		t.Fatal(err)
	}
	p, u, f := rep.CountByVerdict()
	if p+u+f != 3 {
		t.Fatalf("counts %d+%d+%d != 3", p, u, f)
	}
	if rep.WorstVerdict() == core.Passes && (u > 0 || f > 0) {
		t.Error("WorstVerdict inconsistent with counts")
	}
	// A generous deadline passes everything.
	repPass, err := Analyze([]Net{{Name: "n", Tree: tr, Threshold: 0.7, Deadline: 1e7}})
	if err != nil {
		t.Fatal(err)
	}
	if repPass.WorstVerdict() != core.Passes {
		t.Errorf("generous deadline verdict = %v", repPass.WorstVerdict())
	}
	// An impossible deadline fails everything.
	repFail, err := Analyze([]Net{{Name: "n", Tree: tr, Threshold: 0.7, Deadline: 0.0001}})
	if err != nil {
		t.Fatal(err)
	}
	if repFail.WorstVerdict() != core.Fails {
		t.Errorf("impossible deadline verdict = %v", repFail.WorstVerdict())
	}
}

func TestMultiNet(t *testing.T) {
	tr1, tr2 := fanoutNet(t), fanoutNet(t)
	rep, err := Analyze([]Net{
		{Name: "fast", Tree: tr1, Threshold: 0.5, Deadline: 400},
		{Name: "slow", Tree: tr2, Threshold: 0.9, Deadline: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs) != 6 {
		t.Fatalf("outputs = %d, want 6", len(rep.Outputs))
	}
	// Higher threshold means later crossing: slow net's g3 is the critical one.
	crit := rep.Critical()
	if crit[0].Net != "slow" || crit[0].Output != "g3" {
		t.Errorf("critical = %s/%s, want slow/g3", crit[0].Net, crit[0].Output)
	}
}

func TestSummaryRendering(t *testing.T) {
	tr := fanoutNet(t)
	rep, err := Analyze([]Net{{Name: "net1", Tree: tr, Threshold: 0.7, Deadline: 500}})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, want := range []string{"net1", "g1", "g2", "g3", "verdict", "outputs:"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	tr := fanoutNet(t)
	cases := []struct {
		name string
		nets []Net
	}{
		{"empty", nil},
		{"nil tree", []Net{{Name: "x", Threshold: 0.5, Deadline: 1}}},
		{"bad threshold", []Net{{Name: "x", Tree: tr, Threshold: 0, Deadline: 1}}},
		{"threshold one", []Net{{Name: "x", Tree: tr, Threshold: 1, Deadline: 1}}},
		{"negative deadline", []Net{{Name: "x", Tree: tr, Threshold: 0.5, Deadline: -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Analyze(tc.nets); err == nil {
				t.Error("Analyze succeeded, want error")
			}
		})
	}
}

// TestTightenWithSimulation runs the intended two-phase flow: bound-based
// certification first, exact simulation only for the undecided outputs.
func TestTightenWithSimulation(t *testing.T) {
	tr := fanoutNet(t)
	// Pick a deadline inside g3's uncertainty band so it comes back Unknown.
	base, err := Analyze([]Net{{Name: "n", Tree: tr, Threshold: 0.7, Deadline: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var g3 OutputReport
	for _, o := range base.Outputs {
		if o.Output == "g3" {
			g3 = o
		}
	}
	deadline := (g3.TMin + g3.TMax) / 2
	rep, err := Analyze([]Net{{Name: "n", Tree: tr, Threshold: 0.7, Deadline: deadline}})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the exact crossings.
	lumped, mapping, err := sim.Discretize(tr, 16)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := sim.NewCircuit(lumped)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ckt.EigenResponse()
	if err != nil {
		t.Fatal(err)
	}
	exact := make([]float64, len(rep.Outputs))
	for i, o := range rep.Outputs {
		id, _ := tr.Lookup(o.Output)
		ci, err := ckt.Index(mapping[id])
		if err != nil {
			t.Fatal(err)
		}
		exact[i] = resp.CrossingTime(ci, 0.7, 1e-12)
	}
	if err := rep.TightenWith(map[string]float64{"n": deadline}, exact); err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outputs {
		if o.Verdict == core.Unknown {
			t.Errorf("%s still unknown after tightening", o.Output)
		}
	}

	// Crossings outside the bounds are rejected.
	bad := make([]float64, len(rep.Outputs))
	for i := range bad {
		bad[i] = 1e12
	}
	rep2, _ := Analyze([]Net{{Name: "n", Tree: tr, Threshold: 0.7, Deadline: deadline}})
	if err := rep2.TightenWith(map[string]float64{"n": deadline}, bad); err == nil {
		t.Error("TightenWith accepted out-of-bounds crossing")
	}
	if err := rep2.TightenWith(map[string]float64{"n": deadline}, bad[:1]); err == nil {
		t.Error("TightenWith accepted wrong-length slice")
	}
}
