package sta

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestAnalyzeSlewBasics(t *testing.T) {
	tr := fanoutNet(t)
	nets := []SlewNet{{
		Net:      Net{Name: "n", Tree: tr, Threshold: 0.7, Deadline: 1500},
		RiseTime: 200,
	}}
	reports, err := AnalyzeSlew(nets, 64, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	for _, r := range reports {
		if r.TMin > r.TMax {
			t.Errorf("%s: TMin %g > TMax %g", r.Output, r.TMin, r.TMax)
		}
		// A finite input slew can only delay the crossing versus a step.
		if r.TMin < r.StepTMin-1e-6 || r.TMax < r.StepTMax-1e-6 {
			t.Errorf("%s: ramp bounds [%g,%g] earlier than step bounds [%g,%g]",
				r.Output, r.TMin, r.TMax, r.StepTMin, r.StepTMax)
		}
	}
}

func TestAnalyzeSlewZeroRiseMatchesStep(t *testing.T) {
	tr := fanoutNet(t)
	nets := []SlewNet{{Net: Net{Name: "n", Tree: tr, Threshold: 0.5, Deadline: 1000}}}
	reports, err := AnalyzeSlew(nets, 64, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		// Bisection resolution vs closed form: allow 1e-4 relative.
		if math.Abs(r.TMin-r.StepTMin) > 1e-4*(1+r.StepTMin) ||
			math.Abs(r.TMax-r.StepTMax) > 1e-4*(1+r.StepTMax) {
			t.Errorf("%s: zero-rise ramp [%g,%g] != step [%g,%g]",
				r.Output, r.TMin, r.TMax, r.StepTMin, r.StepTMax)
		}
	}
}

func TestAnalyzeSlewInputDelayShifts(t *testing.T) {
	tr := fanoutNet(t)
	base := []SlewNet{{Net: Net{Name: "n", Tree: tr, Threshold: 0.5, Deadline: 1e6}, RiseTime: 100}}
	shifted := []SlewNet{{Net: Net{Name: "n", Tree: tr, Threshold: 0.5, Deadline: 1e6}, RiseTime: 100, InputDelay: 250}}
	a, err := AnalyzeSlew(base, 64, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeSlew(shifted, 64, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs((b[i].TMin-a[i].TMin)-250) > 1e-6 || math.Abs((b[i].TMax-a[i].TMax)-250) > 1e-6 {
			t.Errorf("%s: input delay did not shift bounds by 250", a[i].Output)
		}
	}
}

func TestAnalyzeSlewVerdicts(t *testing.T) {
	tr := fanoutNet(t)
	mk := func(deadline float64) []SlewNet {
		return []SlewNet{{Net: Net{Name: "n", Tree: tr, Threshold: 0.7, Deadline: deadline}, RiseTime: 150}}
	}
	generous, err := AnalyzeSlew(mk(1e6), 64, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range generous {
		if r.Verdict != core.Passes {
			t.Errorf("%s: generous deadline verdict %v", r.Output, r.Verdict)
		}
	}
	impossible, err := AnalyzeSlew(mk(1), 64, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range impossible {
		if r.Verdict != core.Fails {
			t.Errorf("%s: impossible deadline verdict %v", r.Output, r.Verdict)
		}
	}
}

func TestAnalyzeSlewValidation(t *testing.T) {
	tr := fanoutNet(t)
	if _, err := AnalyzeSlew(nil, 64, 100); err == nil {
		t.Error("empty net list accepted")
	}
	if _, err := AnalyzeSlew([]SlewNet{{Net: Net{Name: "n", Tree: tr, Threshold: 0.5, Deadline: 1}}}, 64, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := AnalyzeSlew([]SlewNet{{Net: Net{Name: "n", Tree: tr, Threshold: 0.5, Deadline: 1}, RiseTime: -1}}, 64, 100); err == nil {
		t.Error("negative rise accepted")
	}
	if _, err := AnalyzeSlew([]SlewNet{{Net: Net{Name: "n", Tree: tr, Threshold: 0, Deadline: 1}}}, 64, 100); err == nil {
		t.Error("bad threshold accepted")
	}
}
