package sta

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the report as CSV (header plus one row per output, in
// critical order), for spreadsheets and plotting scripts.
func (r *DesignReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"net", "output", "tp", "td", "tr", "ree", "tmin", "tmax", "elmore", "slack", "optimistic_slack", "verdict"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("sta: csv: %w", err)
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, o := range r.Critical() {
		row := []string{
			o.Net, o.Output,
			g(o.Times.TP), g(o.Times.TD), g(o.Times.TR), g(o.Times.Ree),
			g(o.TMin), g(o.TMax), g(o.Elmore), g(o.Slack), g(o.OptimisticSlack),
			o.Verdict.String(),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("sta: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonReport is the stable wire shape of a report.
type jsonReport struct {
	Outputs []jsonOutput `json:"outputs"`
	Passes  int          `json:"passes"`
	Unknown int          `json:"unknown"`
	Fails   int          `json:"fails"`
}

type jsonOutput struct {
	Net             string  `json:"net"`
	Output          string  `json:"output"`
	TP              float64 `json:"tp"`
	TD              float64 `json:"td"`
	TR              float64 `json:"tr"`
	Ree             float64 `json:"ree"`
	TMin            float64 `json:"tmin"`
	TMax            float64 `json:"tmax"`
	Elmore          float64 `json:"elmore"`
	Slack           float64 `json:"slack"`
	OptimisticSlack float64 `json:"optimistic_slack"`
	Verdict         string  `json:"verdict"`
}

// WriteJSON emits the report as indented JSON with a stable schema.
func (r *DesignReport) WriteJSON(w io.Writer) error {
	p, u, f := r.CountByVerdict()
	out := jsonReport{Passes: p, Unknown: u, Fails: f}
	for _, o := range r.Critical() {
		out.Outputs = append(out.Outputs, jsonOutput{
			Net: o.Net, Output: o.Output,
			TP: o.Times.TP, TD: o.Times.TD, TR: o.Times.TR, Ree: o.Times.Ree,
			TMin: o.TMin, TMax: o.TMax, Elmore: o.Elmore,
			Slack: o.Slack, OptimisticSlack: o.OptimisticSlack,
			Verdict: o.Verdict.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("sta: json: %w", err)
	}
	return nil
}
