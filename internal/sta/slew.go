package sta

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/waveform"
)

// SlewNet extends Net with a finite input transition: the driver output is
// modeled as a 0→1 ramp of the given rise time instead of an ideal step
// (the §VI superposition extension). InputDelay shifts the whole excitation,
// modeling upstream arrival time.
type SlewNet struct {
	Net
	// RiseTime is the input ramp duration in the tree's time units;
	// 0 degenerates to the ideal step.
	RiseTime float64
	// InputDelay is the arrival time of the ramp's start.
	InputDelay float64
}

// SlewReport is the timing record for one output under a ramp excitation.
type SlewReport struct {
	Net    string
	Output string
	// TMin and TMax bound the threshold crossing, measured from t = 0
	// (InputDelay included).
	TMin, TMax float64
	// StepTMin and StepTMax are the ideal-step bounds for comparison; a
	// finite slew can only delay the crossing.
	StepTMin, StepTMax float64
	Verdict            core.Verdict
}

// AnalyzeSlew times every output of every net under its ramp excitation.
// quad sets the superposition quadrature (64 is ample); horizon bounds the
// crossing search and must exceed every deadline of interest.
func AnalyzeSlew(nets []SlewNet, quad int, horizon float64) ([]SlewReport, error) {
	if len(nets) == 0 {
		return nil, fmt.Errorf("sta: no nets to analyze")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("sta: horizon must be positive")
	}
	var reports []SlewReport
	for _, net := range nets {
		if err := net.Validate(); err != nil {
			return nil, err
		}
		if net.RiseTime < 0 || net.InputDelay < 0 {
			return nil, fmt.Errorf("sta: net %q has negative rise time or input delay", net.Name)
		}
		results, err := core.AnalyzeTree(net.Tree)
		if err != nil {
			return nil, fmt.Errorf("sta: net %q: %w", net.Name, err)
		}
		in := waveform.Ramp(net.RiseTime)
		for _, res := range results {
			tLo, tHi, err := waveform.CrossingBounds(res.Bounds, in, net.Threshold, horizon, quad)
			if err != nil {
				return nil, fmt.Errorf("sta: net %q output %q: %w", net.Name, res.Name, err)
			}
			tLo += net.InputDelay
			tHi += net.InputDelay
			verdict := core.Unknown
			switch {
			case tHi <= net.Deadline:
				verdict = core.Passes
			case tLo > net.Deadline:
				verdict = core.Fails
			}
			reports = append(reports, SlewReport{
				Net:      net.Name,
				Output:   res.Name,
				TMin:     tLo,
				TMax:     tHi,
				StepTMin: res.Bounds.TMin(net.Threshold) + net.InputDelay,
				StepTMax: res.Bounds.TMax(net.Threshold) + net.InputDelay,
				Verdict:  verdict,
			})
		}
	}
	return reports, nil
}
