package sta

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/elmore"
	"repro/internal/rctree"
)

// Net is one driver-to-loads RC tree with its timing contract.
type Net struct {
	// Name identifies the net in reports.
	Name string
	// Tree is the RC network; its designated outputs are timed.
	Tree *rctree.Tree
	// Threshold is the receiving gates' switching threshold as a fraction
	// of the step amplitude (the paper's example uses 0.7).
	Threshold float64
	// Deadline is the required arrival time in the tree's time units.
	Deadline float64
}

// Validate rejects unusable nets.
func (n Net) Validate() error {
	if n.Tree == nil {
		return fmt.Errorf("sta: net %q has no tree", n.Name)
	}
	if n.Threshold <= 0 || n.Threshold >= 1 {
		return fmt.Errorf("sta: net %q threshold %g outside (0,1)", n.Name, n.Threshold)
	}
	if n.Deadline < 0 {
		return fmt.Errorf("sta: net %q has negative deadline %g", n.Name, n.Deadline)
	}
	if len(n.Tree.Outputs()) == 0 {
		return fmt.Errorf("sta: net %q has no outputs", n.Name)
	}
	return nil
}

// OutputReport is the timing record for one output of one net.
type OutputReport struct {
	Net    string
	Output string
	Times  rctree.Times
	// TMin and TMax bound the threshold-crossing time.
	TMin, TMax float64
	// Elmore is the baseline TDe for comparison.
	Elmore float64
	// Slack is Deadline − TMax: nonnegative means guaranteed to meet
	// timing. OptimisticSlack is Deadline − TMin: negative means guaranteed
	// to fail.
	Slack, OptimisticSlack float64
	// Verdict is the Figure 9 certification against the deadline.
	Verdict core.Verdict
}

// DesignReport aggregates every output of every net.
type DesignReport struct {
	Outputs []OutputReport
}

// Analyze times every output of every net.
func Analyze(nets []Net) (*DesignReport, error) {
	if len(nets) == 0 {
		return nil, fmt.Errorf("sta: no nets to analyze")
	}
	report := &DesignReport{}
	for _, net := range nets {
		if err := net.Validate(); err != nil {
			return nil, err
		}
		results, err := core.AnalyzeTree(net.Tree)
		if err != nil {
			return nil, fmt.Errorf("sta: net %q: %w", net.Name, err)
		}
		tds := elmore.Delays(net.Tree)
		for _, res := range results {
			tmin := res.Bounds.TMin(net.Threshold)
			tmax := res.Bounds.TMax(net.Threshold)
			report.Outputs = append(report.Outputs, OutputReport{
				Net:             net.Name,
				Output:          res.Name,
				Times:           res.Times,
				TMin:            tmin,
				TMax:            tmax,
				Elmore:          tds[res.Output],
				Slack:           net.Deadline - tmax,
				OptimisticSlack: net.Deadline - tmin,
				Verdict:         res.Bounds.OK(net.Threshold, net.Deadline),
			})
		}
	}
	return report, nil
}

// Critical returns the outputs sorted by ascending guaranteed slack (worst
// first), ties broken by net then output name.
func (r *DesignReport) Critical() []OutputReport {
	out := append([]OutputReport(nil), r.Outputs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slack != out[j].Slack {
			return out[i].Slack < out[j].Slack
		}
		if out[i].Net != out[j].Net {
			return out[i].Net < out[j].Net
		}
		return out[i].Output < out[j].Output
	})
	return out
}

// WorstVerdict reduces the design to a single certification: Fails if any
// output fails, else Unknown if any is undecided, else Passes.
func (r *DesignReport) WorstVerdict() core.Verdict {
	worst := core.Passes
	for _, o := range r.Outputs {
		if o.Verdict < worst {
			worst = o.Verdict
		}
	}
	return worst
}

// CountByVerdict tallies outputs per verdict.
func (r *DesignReport) CountByVerdict() (passes, unknown, fails int) {
	for _, o := range r.Outputs {
		switch o.Verdict {
		case core.Passes:
			passes++
		case core.Fails:
			fails++
		default:
			unknown++
		}
	}
	return
}

// Summary renders a fixed-width report table, worst slack first.
func (r *DesignReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-12s %12s %12s %12s %12s %10s\n",
		"net", "output", "Tmin", "Tmax", "elmore", "slack", "verdict")
	for _, o := range r.Critical() {
		fmt.Fprintf(&b, "%-12s %-12s %12.4g %12.4g %12.4g %12.4g %10s\n",
			o.Net, o.Output, o.TMin, o.TMax, o.Elmore, o.Slack, o.Verdict)
	}
	p, u, f := r.CountByVerdict()
	fmt.Fprintf(&b, "outputs: %d pass, %d unknown, %d fail\n", p, u, f)
	return b.String()
}

// TightenWith upgrades Unknown verdicts using exact crossing times obtained
// elsewhere (e.g. the sim package): exact[i] is the measured crossing of
// r.Outputs[i], or NaN to leave it alone. This mirrors the intended
// workflow: certify cheaply with bounds, simulate only the undecided nets.
func (r *DesignReport) TightenWith(deadlines map[string]float64, exact []float64) error {
	if len(exact) != len(r.Outputs) {
		return fmt.Errorf("sta: TightenWith needs %d crossings, got %d", len(r.Outputs), len(exact))
	}
	for i := range r.Outputs {
		o := &r.Outputs[i]
		if o.Verdict != core.Unknown || math.IsNaN(exact[i]) {
			continue
		}
		deadline, ok := deadlines[o.Net]
		if !ok {
			continue
		}
		// The exact crossing must respect the bounds it refines.
		if exact[i] < o.TMin-1e-9*(1+o.TMin) || exact[i] > o.TMax+1e-9*(1+o.TMax) {
			return fmt.Errorf("sta: exact crossing %g for %s/%s outside bounds [%g, %g]",
				exact[i], o.Net, o.Output, o.TMin, o.TMax)
		}
		if exact[i] <= deadline {
			o.Verdict = core.Passes
		} else {
			o.Verdict = core.Fails
		}
	}
	return nil
}
