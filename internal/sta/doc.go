// Package sta turns the Penfield–Rubinstein bounds into a small static
// timing engine of the kind the paper anticipates in its introduction: given
// a set of nets (each an RC tree with a switching threshold and a required
// arrival time), it certifies every output as passing, failing, or
// undecidable, computes guaranteed and optimistic slacks, and ranks the
// critical outputs — all without a single transient simulation.
//
// The engine has three entry points:
//
//   - Analyze takes []Net and returns a DesignReport of per-output
//     verdicts, slacks and the critical ranking;
//   - Skew and WorstSkew bound the arrival-time spread between outputs of
//     a common tree (clock-distribution analysis);
//   - AnalyzeSlew folds finite input transition times into the bounds via
//     the §VI superposition machinery.
//
// Reports render to text, CSV and JSON (see report.go), mirroring the
// session transcripts the paper prints.
package sta
