package sta

import (
	"fmt"

	"repro/internal/core"
)

// SkewBound brackets the clock skew between two outputs of the same tree at
// threshold v: the latest possible arrival of one minus the earliest
// possible arrival of the other. The returned interval [Min, Max] is
// guaranteed to contain arrival(a) − arrival(b) for the true responses.
type SkewBound struct {
	Min, Max float64
}

// Skew computes the guaranteed skew interval between results a and b (as
// returned by core.AnalyzeTree on one tree) at threshold v.
//
//	skew(a,b) ∈ [TMin_a − TMax_b , TMax_a − TMin_b]
//
// For a perfectly symmetric distribution network the interval is centered on
// zero and its width equals the sum of the two delay-uncertainty windows.
func Skew(a, b core.Result, v float64) (SkewBound, error) {
	if v <= 0 || v >= 1 {
		return SkewBound{}, fmt.Errorf("sta: skew threshold %g outside (0,1)", v)
	}
	return SkewBound{
		Min: a.Bounds.TMin(v) - b.Bounds.TMax(v),
		Max: a.Bounds.TMax(v) - b.Bounds.TMin(v),
	}, nil
}

// WorstSkew returns the largest certified |skew| over all output pairs —
// the number a clock-tree designer budgets against.
func WorstSkew(results []core.Result, v float64) (float64, error) {
	if len(results) < 2 {
		return 0, fmt.Errorf("sta: worst skew needs at least two outputs")
	}
	var worst float64
	for i := range results {
		for j := i + 1; j < len(results); j++ {
			sb, err := Skew(results[i], results[j], v)
			if err != nil {
				return 0, err
			}
			if x := -sb.Min; x > worst {
				worst = x
			}
			if sb.Max > worst {
				worst = sb.Max
			}
		}
	}
	return worst, nil
}
