package sta

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func sampleReport(t *testing.T) *DesignReport {
	t.Helper()
	tr := fanoutNet(t)
	rep, err := Analyze([]Net{{Name: "net1", Tree: tr, Threshold: 0.7, Deadline: 500}})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestWriteCSV(t *testing.T) {
	rep := sampleReport(t)
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(records) != 4 { // header + 3 outputs
		t.Fatalf("rows = %d, want 4", len(records))
	}
	if records[0][0] != "net" || records[0][11] != "verdict" {
		t.Errorf("header = %v", records[0])
	}
	// Worst slack first: g3.
	if records[1][1] != "g3" {
		t.Errorf("first data row output = %q, want g3", records[1][1])
	}
	// Numeric columns parse back.
	for _, row := range records[1:] {
		for col := 2; col <= 10; col++ {
			if _, err := strconv.ParseFloat(row[col], 64); err != nil {
				t.Errorf("column %d value %q not numeric", col, row[col])
			}
		}
	}
}

func TestWriteJSON(t *testing.T) {
	rep := sampleReport(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Outputs []map[string]any `json:"outputs"`
		Passes  int              `json:"passes"`
		Unknown int              `json:"unknown"`
		Fails   int              `json:"fails"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(decoded.Outputs) != 3 {
		t.Fatalf("outputs = %d, want 3", len(decoded.Outputs))
	}
	if decoded.Passes+decoded.Unknown+decoded.Fails != 3 {
		t.Errorf("verdict counts = %d+%d+%d", decoded.Passes, decoded.Unknown, decoded.Fails)
	}
	for _, o := range decoded.Outputs {
		for _, key := range []string{"net", "output", "tp", "td", "tr", "tmin", "tmax", "slack", "verdict"} {
			if _, ok := o[key]; !ok {
				t.Errorf("output record missing %q: %v", key, o)
			}
		}
	}
	if !strings.Contains(buf.String(), "\n  ") {
		t.Error("JSON not indented")
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, bytes.ErrTooLarge
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriteErrorsPropagate(t *testing.T) {
	rep := sampleReport(t)
	// The csv writer buffers, so the error surfaces at Flush; a writer that
	// always fails exercises both paths.
	if err := rep.WriteCSV(&failWriter{}); err == nil {
		t.Error("CSV write error swallowed")
	}
	if err := rep.WriteJSON(&failWriter{}); err == nil {
		t.Error("JSON write error swallowed")
	}
}
