package elmore

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/randnet"
	"repro/internal/rctree"
	"repro/internal/sim"
)

func singlePole(t *testing.T, r, c float64) (*rctree.Tree, rctree.NodeID) {
	t.Helper()
	b := rctree.NewBuilder("in")
	n := b.Resistor(rctree.Root, "out", r)
	b.Capacitor(n, c)
	b.Output(n)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr, n
}

// TestSinglePoleMoments: H(s) = 1/(1+sRC) has m_k = (−RC)^k.
func TestSinglePoleMoments(t *testing.T) {
	const R, C = 50.0, 2.0
	tr, out := singlePole(t, R, C)
	m, err := Moments(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	rc := R * C
	for k := 1; k <= 3; k++ {
		want := math.Pow(-rc, float64(k))
		if got := m[k][out]; math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("m%d = %g, want %g", k, got, want)
		}
	}
}

// TestFirstMomentIsElmore: m1 = −TDe on random lumped trees, every node.
func TestFirstMomentIsElmore(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		cfg := randnet.DefaultConfig(1 + rng.Intn(30))
		cfg.LineProb = 0
		tr := randnet.Tree(rng, cfg)
		m, err := Moments(tr, 1)
		if err != nil {
			t.Fatal(err)
		}
		td := Delays(tr)
		for i := 1; i < tr.NumNodes(); i++ {
			if math.Abs(m[1][i]+td[i]) > 1e-9*(1+td[i]) {
				t.Fatalf("trial %d node %d: m1=%g, -TD=%g", trial, i, m[1][i], -td[i])
			}
		}
	}
}

// TestMomentsMatchSimulator: the k-th response moment from the recursion
// equals the analytic moment of the eigen-exact response,
// ∫ t^{k-1}(1−v) dt · (−1)^k / (k−1)! relations aside, we check via the
// modal form directly: m_k = Σ_m (−1)^k · A_m/λ_m^k … with v = 1 + Σ A e^{−λt},
// H's moments satisfy m_k = (−1)^k Σ_m (−A_m)·(1/λ_m)^k · k!/k! — concretely
// m_k = Σ_m A_m/λ_m^k · (−1)^{k+1}·… We avoid sign gymnastics by comparing
// against numerically integrated moments of the simulated response.
func TestMomentsMatchSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 25; trial++ {
		cfg := randnet.DefaultConfig(1 + rng.Intn(12))
		cfg.LineProb = 0
		tr := randnet.Tree(rng, cfg)
		ckt, err := sim.NewCircuit(tr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ckt.EigenResponse()
		if err != nil {
			t.Fatal(err)
		}
		m, err := Moments(tr, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range tr.Outputs() {
			i, err := ckt.Index(e)
			if err != nil {
				t.Fatal(err)
			}
			// |m1| = ∫(1−v)dt: compare to the modal first moment.
			if got, want := resp.ElmoreDelay(i), -m[1][e]; math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("trial %d: modal m1 %g != recursion %g", trial, got, want)
			}
			// Second moment: for v = 1 + Σ A e^{−λt}, H(s) = 1 + Σ A·s/(s+λ)
			// so m2 = Σ −A/λ². The recursion must agree.
			var m2 float64
			for mi, lam := range resp.Lambda {
				m2 -= resp.A[i][mi] / (lam * lam)
			}
			// The recursion's m2 coefficient of s² in H(s):
			// H(s) = Σ_k m_k s^k with m2 as computed. For the modal form,
			// expanding A·s/(s+λ) = A·(s/λ)·1/(1+s/λ) = A(s/λ − s²/λ² + …),
			// the s² coefficient is −A/λ², matching m2 above.
			if math.Abs(m2-m[2][e]) > 1e-6*(1+math.Abs(m2)) {
				t.Fatalf("trial %d: modal m2 %g != recursion %g", trial, m2, m[2][e])
			}
		}
	}
}

func TestMomentsRejectLines(t *testing.T) {
	b := rctree.NewBuilder("in")
	far := b.Line(rctree.Root, "far", 10, 1)
	b.Output(far)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Moments(tr, 2); err == nil {
		t.Error("Moments accepted a distributed line")
	}
	if _, err := Moments(tr, 0); err == nil {
		t.Error("Moments accepted order 0")
	}
}

// TestEstimates: on a single pole, ElmoreLn2 and D2M are exact for the 50%
// point; ElmoreTD overestimates it.
func TestEstimates(t *testing.T) {
	const R, C = 100.0, 0.5 // tau = 50, t50 = 50·ln2
	tr, out := singlePole(t, R, C)
	t50 := 50 * math.Ln2

	est, err := Estimate(tr, out, ElmoreLn2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-t50) > 1e-9 {
		t.Errorf("ElmoreLn2 = %g, want %g", est, t50)
	}
	est, err = Estimate(tr, out, D2M)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-t50) > 1e-9 {
		t.Errorf("D2M = %g, want %g", est, t50)
	}
	est, err = Estimate(tr, out, ElmoreTD)
	if err != nil {
		t.Fatal(err)
	}
	if est <= t50 {
		t.Errorf("ElmoreTD = %g should exceed the true 50%% delay %g", est, t50)
	}
	if _, err := Estimate(tr, out, DelayEstimate(42)); err == nil {
		t.Error("unknown metric accepted")
	}
}

// TestD2MBetweenBounds: on random trees the D2M estimate of the 50% point
// stays close to the exact crossing, and always below ElmoreTD.
func TestD2MOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 50; trial++ {
		cfg := randnet.DefaultConfig(1 + rng.Intn(15))
		cfg.LineProb = 0
		tr := randnet.Tree(rng, cfg)
		for _, e := range tr.Outputs() {
			td, err := Estimate(tr, e, ElmoreTD)
			if err != nil {
				t.Fatal(err)
			}
			d2m, err := Estimate(tr, e, D2M)
			if err != nil {
				if td == 0 {
					continue // D2M is legitimately undefined when TD = 0
				}
				t.Fatalf("trial %d: D2M failed with TD=%g: %v", trial, td, err)
			}
			if d2m > td+1e-9 {
				t.Fatalf("trial %d: D2M %g exceeds Elmore %g", trial, d2m, td)
			}
		}
	}
}

func TestEstimateString(t *testing.T) {
	if ElmoreTD.String() != "elmore" || ElmoreLn2.String() != "elmore*ln2" || D2M.String() != "d2m" {
		t.Error("DelayEstimate names wrong")
	}
	if DelayEstimate(42).String() == "" {
		t.Error("unknown metric name empty")
	}
}
