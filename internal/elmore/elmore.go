// Package elmore implements the baseline delay estimate the paper builds on
// — Elmore's first moment of the impulse response (reference [2], Elmore
// 1948) — plus, as an extension, higher-order response moments computed by
// the classical linear-time path-tracing recursion, and the delay metrics
// derived from them.
//
// The Penfield–Rubinstein TDe equals the (negated) first moment m1; the
// higher moments sharpen single-number delay estimates and are used by the
// test suite as an independent consistency check against the exact
// simulator.
package elmore

import (
	"fmt"
	"math"

	"repro/internal/rctree"
)

// Delays returns the Elmore delay TDe for every node of the tree (index by
// NodeID), computed in O(n) by the classical two-pass algorithm. It is the
// baseline the bounds are compared against throughout EXPERIMENTS.md.
func Delays(t *rctree.Tree) []float64 {
	return t.ElmoreAll()
}

// Moments computes the first `order` moments of the unit-step transfer
// function H(s) = 1 + m1·s + m2·s² + … at every node of a lumped RC tree.
// The returned slice is indexed moments[k][node] with k in 1..order
// (moments[0] is the all-ones zeroth moment).
//
// The recursion is the standard one: with m0 = 1 everywhere,
//
//	m_{k+1}(e) = − Σ_{edges on path(in→e)} R_edge · Σ_{u downstream} C_u·m_k(u)
//
// which reduces to m1 = −TDe. Distributed lines must be discretized first
// (sim.Discretize); Moments returns an error if any remain.
func Moments(t *rctree.Tree, order int) ([][]float64, error) {
	if order < 1 {
		return nil, fmt.Errorf("elmore: order must be >= 1, got %d", order)
	}
	n := t.NumNodes()
	for id := 1; id < n; id++ {
		if kind, _, _ := t.Edge(rctree.NodeID(id)); kind == rctree.EdgeLine {
			return nil, fmt.Errorf("elmore: node %q has a distributed line; discretize first", t.Name(rctree.NodeID(id)))
		}
	}
	moments := make([][]float64, order+1)
	m0 := make([]float64, n)
	for i := range m0 {
		m0[i] = 1
	}
	moments[0] = m0

	for k := 0; k < order; k++ {
		prev := moments[k]
		// Bottom-up: weighted downstream sums S(i) = Σ_{u at/below i} C_u·m_k(u).
		sub := make([]float64, n)
		for i := n - 1; i >= 0; i-- {
			sub[i] += t.NodeCap(rctree.NodeID(i)) * prev[i]
			if i > 0 {
				sub[t.Parent(rctree.NodeID(i))] += sub[i]
			}
		}
		// Top-down: prefix-accumulate −R_edge·S along every root path.
		next := make([]float64, n)
		for i := 1; i < n; i++ {
			parent := t.Parent(rctree.NodeID(i))
			_, r, _ := t.Edge(rctree.NodeID(i))
			next[i] = next[parent] - r*sub[i]
		}
		moments[k+1] = next
	}
	return moments, nil
}

// DelayEstimate names a single-number delay metric derived from moments.
type DelayEstimate int

const (
	// ElmoreTD is the raw first moment, the paper's TDe — an upper-bound
	// flavored estimate of the 50% point.
	ElmoreTD DelayEstimate = iota
	// ElmoreLn2 scales TDe by ln 2, exact for a single pole at 50%.
	ElmoreLn2
	// D2M is the two-moment metric ln2·m1²/√m2, a post-paper refinement
	// included as an extension baseline.
	D2M
)

func (d DelayEstimate) String() string {
	switch d {
	case ElmoreTD:
		return "elmore"
	case ElmoreLn2:
		return "elmore*ln2"
	case D2M:
		return "d2m"
	}
	return fmt.Sprintf("DelayEstimate(%d)", int(d))
}

// Estimate computes the chosen 50%-delay metric at node e of a lumped tree.
func Estimate(t *rctree.Tree, e rctree.NodeID, metric DelayEstimate) (float64, error) {
	switch metric {
	case ElmoreTD:
		return Delays(t)[e], nil
	case ElmoreLn2:
		return Delays(t)[e] * math.Ln2, nil
	case D2M:
		m, err := Moments(t, 2)
		if err != nil {
			return 0, err
		}
		m1, m2 := m[1][e], m[2][e]
		if m2 <= 0 {
			return 0, fmt.Errorf("elmore: nonpositive second moment %g at node %d", m2, e)
		}
		return math.Ln2 * m1 * m1 / math.Sqrt(m2), nil
	}
	return 0, fmt.Errorf("elmore: unknown metric %v", metric)
}
