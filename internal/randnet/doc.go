// Package randnet generates pseudo-random RC trees for property-based
// tests and benchmarks. Generation is deterministic for a given seed so
// failures are reproducible.
//
// Tree draws a random network under a Config that dials topology (bushy
// fanout trees through single RC ladders via Chain), the mix of lumped
// resistors and distributed lines (LineProb), capacitor density (CapProb)
// and element magnitudes (RMax/CMax); every leaf is designated an output.
// Ladder builds the deterministic N-section uniform ladder — the lumped
// approximation of one distributed line — used by discretization-
// convergence tests.
//
// Both constructors panic on an invalid build rather than returning an
// error: generation obeys the builder's preconditions by construction, so
// a failure is a bug in this package, not in the caller.
package randnet
