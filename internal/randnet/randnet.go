package randnet

import (
	"fmt"
	"math/rand"

	"repro/internal/rctree"
)

// Config controls the shape and element values of generated trees.
type Config struct {
	// Nodes is the number of non-input nodes to create (>= 1).
	Nodes int
	// LineProb is the probability that an edge is a distributed RC line
	// rather than a lumped resistor.
	LineProb float64
	// CapProb is the probability that a node carries a lumped capacitor.
	// At least one capacitor is always placed so the tree is valid.
	CapProb float64
	// Chain biases the topology: 0 yields random attachment (bushy trees),
	// 1 always extends the most recent node (a single RC ladder).
	Chain float64
	// RMax and CMax bound element values, drawn uniformly from (0, RMax]
	// and (0, CMax].
	RMax, CMax float64
}

// DefaultConfig is a reasonable mix of lines, branches and lumped elements.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, LineProb: 0.4, CapProb: 0.7, Chain: 0.5, RMax: 100, CMax: 10}
}

// Tree generates a random RC tree with all leaves designated as outputs.
//
// The random source is injected rather than global so generation is
// reproducible and race-free under parallel callers: give each goroutine its
// own seeded *rand.Rand (TreeSeed is the one-shot form). rng must not be
// nil.
func Tree(rng *rand.Rand, cfg Config) *rctree.Tree {
	if rng == nil {
		panic("randnet: nil random source; inject a seeded *rand.Rand")
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.RMax <= 0 {
		cfg.RMax = 100
	}
	if cfg.CMax <= 0 {
		cfg.CMax = 10
	}
	b := rctree.NewBuilder("in")
	ids := []rctree.NodeID{rctree.Root}
	placedCap := false
	for i := 0; i < cfg.Nodes; i++ {
		var parent rctree.NodeID
		if rng.Float64() < cfg.Chain {
			parent = ids[len(ids)-1]
		} else {
			parent = ids[rng.Intn(len(ids))]
		}
		name := fmt.Sprintf("n%d", i+1)
		r := rng.Float64()*cfg.RMax + 1e-3
		var id rctree.NodeID
		if rng.Float64() < cfg.LineProb {
			c := rng.Float64()*cfg.CMax + 1e-6
			id = b.Line(parent, name, r, c)
			placedCap = true
		} else {
			id = b.Resistor(parent, name, r)
		}
		if rng.Float64() < cfg.CapProb {
			b.Capacitor(id, rng.Float64()*cfg.CMax+1e-6)
			placedCap = true
		}
		ids = append(ids, id)
	}
	if !placedCap {
		b.Capacitor(ids[len(ids)-1], rng.Float64()*cfg.CMax+1e-6)
	}
	t, err := b.Build()
	if err != nil {
		// Generation obeys the builder's preconditions, so this is a bug.
		panic(fmt.Sprintf("randnet: generated invalid tree: %v", err))
	}
	return t
}

// TreeSeed generates a random RC tree from a fresh source seeded with seed —
// the one-shot convenience over Tree for callers that do not keep a source.
func TreeSeed(seed int64, cfg Config) *rctree.Tree {
	return Tree(rand.New(rand.NewSource(seed)), cfg)
}

// Ladder generates a uniform N-section RC ladder (the lumped approximation
// of a single distributed line), with total resistance rTot and total
// capacitance cTot. The far end is the single output.
func Ladder(n int, rTot, cTot float64) *rctree.Tree {
	if n < 1 {
		n = 1
	}
	b := rctree.NewBuilder("in")
	prev := rctree.Root
	for i := 0; i < n; i++ {
		prev = b.Resistor(prev, fmt.Sprintf("n%d", i+1), rTot/float64(n))
		b.Capacitor(prev, cTot/float64(n))
	}
	b.Output(prev)
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("randnet: ladder: %v", err))
	}
	return t
}
