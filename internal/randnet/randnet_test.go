package randnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/rctree"
)

func TestTreeDeterministic(t *testing.T) {
	a := Tree(rand.New(rand.NewSource(7)), DefaultConfig(20))
	b := Tree(rand.New(rand.NewSource(7)), DefaultConfig(20))
	if a.String() != b.String() {
		t.Error("same seed produced different trees")
	}
	c := Tree(rand.New(rand.NewSource(8)), DefaultConfig(20))
	if a.String() == c.String() {
		t.Error("different seeds produced identical trees")
	}
}

func TestTreeAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		cfg := Config{
			Nodes:    rng.Intn(50), // includes 0, which is clamped to 1
			LineProb: rng.Float64(),
			CapProb:  rng.Float64(),
			Chain:    rng.Float64(),
			RMax:     rng.Float64() * 1000,
			CMax:     rng.Float64() * 100,
		}
		tr := Tree(rng, cfg)
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: invalid tree: %v", trial, err)
		}
		if tr.TotalCap() <= 0 {
			t.Fatalf("trial %d: no capacitance", trial)
		}
		if len(tr.Outputs()) == 0 {
			t.Fatalf("trial %d: no outputs", trial)
		}
	}
}

func TestTreeSeedMatchesInjectedSource(t *testing.T) {
	a := TreeSeed(7, DefaultConfig(20))
	b := Tree(rand.New(rand.NewSource(7)), DefaultConfig(20))
	if a.String() != b.String() {
		t.Errorf("TreeSeed(7) != Tree(rand.New(7)):\n%s\n%s", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Error("nil rng must panic with a clear message")
		}
	}()
	Tree(nil, DefaultConfig(3))
}

func TestChainBias(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := DefaultConfig(40)
	cfg.Chain = 1 // always extend the most recent node: a pure ladder
	cfg.LineProb = 0
	tr := Tree(rng, cfg)
	if got := tr.Depth(); got != 40 {
		t.Errorf("pure chain depth = %d, want 40", got)
	}
	cfg.Chain = 0 // random attachment: almost surely shallower
	bushy := Tree(rng, cfg)
	if bushy.Depth() >= 40 {
		t.Errorf("bushy tree depth = %d, want < 40", bushy.Depth())
	}
}

func TestLadder(t *testing.T) {
	tr := Ladder(10, 100, 50)
	if tr.NumNodes() != 11 {
		t.Fatalf("nodes = %d, want 11", tr.NumNodes())
	}
	if math.Abs(tr.TotalRes()-100) > 1e-9 || math.Abs(tr.TotalCap()-50) > 1e-9 {
		t.Errorf("totals = %g, %g; want 100, 50", tr.TotalRes(), tr.TotalCap())
	}
	if len(tr.Outputs()) != 1 {
		t.Fatalf("outputs = %d", len(tr.Outputs()))
	}
	// The ladder is a chain: TD at the far end equals TP.
	tm, err := tr.CharacteristicTimes(tr.Outputs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm.TD-tm.TP) > 1e-9 {
		t.Errorf("ladder TD=%g != TP=%g", tm.TD, tm.TP)
	}
	// As the section count grows, TD approaches the distributed RC/2 from
	// above: TD(N) = RC/2 · (1 + 1/N).
	for _, n := range []int{1, 4, 16} {
		lad := Ladder(n, 100, 50)
		tmN, err := lad.CharacteristicTimes(lad.Outputs()[0])
		if err != nil {
			t.Fatal(err)
		}
		want := 100.0 * 50 / 2 * (1 + 1/float64(n))
		if math.Abs(tmN.TD-want) > 1e-9*want {
			t.Errorf("Ladder(%d) TD = %g, want %g", n, tmN.TD, want)
		}
	}
	// Degenerate count clamps to 1.
	if Ladder(0, 1, 1).NumNodes() != 2 {
		t.Error("Ladder(0) did not clamp")
	}
}

func TestZeroValueConfigClamped(t *testing.T) {
	tr := Tree(rand.New(rand.NewSource(11)), Config{})
	if err := tr.Validate(); err != nil {
		t.Fatalf("zero config tree invalid: %v", err)
	}
	if tr.NumNodes() < 2 {
		t.Error("zero config produced empty tree")
	}
	_ = rctree.Root
}
