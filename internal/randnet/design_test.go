package randnet

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

func TestDesignShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultDesignConfig(4, 3)
	d := Design(rng, cfg)
	if len(d.Nets) != 12 {
		t.Fatalf("nets = %d, want 12", len(d.Nets))
	}
	// Every non-level-0 net has at least one fanin stage; level-0 nets none.
	fanin := map[string]int{}
	for _, s := range d.Stages {
		fanin[s.ToNet]++
		if s.Delay <= 0 {
			t.Errorf("stage %+v has non-positive delay", s)
		}
	}
	for _, n := range d.Nets {
		isPrimary := n.Name[:2] == "l0"
		if isPrimary && fanin[n.Name] != 0 {
			t.Errorf("primary net %q has fanin", n.Name)
		}
		if !isPrimary && fanin[n.Name] == 0 {
			t.Errorf("net %q has no fanin", n.Name)
		}
	}
	// The generated design must survive the deck round trip.
	back, err := netlist.ParseDesign(netlist.WriteDesign(d))
	if err != nil {
		t.Fatalf("generated design rejected: %v", err)
	}
	if len(back.Nets) != len(d.Nets) || len(back.Stages) != len(d.Stages) {
		t.Errorf("round trip changed shape")
	}
}

func TestDesignSeedReproducible(t *testing.T) {
	a := DesignSeed(9, DefaultDesignConfig(2, 2))
	b := DesignSeed(9, DefaultDesignConfig(2, 2))
	if netlist.WriteDesign(a) != netlist.WriteDesign(b) {
		t.Error("same seed produced different designs")
	}
}

func TestDesignDefaults(t *testing.T) {
	d := Design(rand.New(rand.NewSource(1)), DesignConfig{})
	if len(d.Nets) != 1 || len(d.Stages) != 0 {
		t.Errorf("zero config: %d nets, %d stages", len(d.Nets), len(d.Stages))
	}
	if Design(rand.New(rand.NewSource(1)), DesignConfig{Levels: 2, Width: 1}) == nil {
		t.Error("nil design")
	}
}

func TestDesignNilRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil rng accepted")
		}
	}()
	Design(nil, DefaultDesignConfig(1, 1))
}
