package randnet

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/rctree"
)

// DesignConfig controls the shape of generated multi-net designs.
type DesignConfig struct {
	// Levels is the number of pipeline levels (>= 1).
	Levels int
	// Width is the number of nets per level (>= 1).
	Width int
	// Net configures each net's RC tree.
	Net Config
	// FaninMax bounds how many previous-level drivers feed each non-primary
	// net (at least one is always wired so every non-primary net is
	// reachable). 0 means 2.
	FaninMax int
	// DelayMax bounds the uniform intrinsic gate delays, drawn from
	// (0, DelayMax]. 0 means 10.
	DelayMax float64
}

// DefaultDesignConfig is a bushy multi-level pipeline with mid-sized nets.
func DefaultDesignConfig(levels, width int) DesignConfig {
	return DesignConfig{
		Levels:   levels,
		Width:    width,
		Net:      DefaultConfig(20),
		FaninMax: 2,
		DelayMax: 10,
	}
}

// Design generates a random layered design: Levels×Width random nets, each
// net beyond level 0 driven by 1..FaninMax stage edges from random outputs
// of random previous-level nets. Net l<i>n<j> sits at level i; the result is
// acyclic by construction, with level-0 nets as the primary inputs.
//
// The random source is injected for reproducibility, as with Tree.
func Design(rng *rand.Rand, cfg DesignConfig) *netlist.Design {
	if rng == nil {
		panic("randnet: nil random source; inject a seeded *rand.Rand")
	}
	if cfg.Levels < 1 {
		cfg.Levels = 1
	}
	if cfg.Width < 1 {
		cfg.Width = 1
	}
	if cfg.FaninMax < 1 {
		cfg.FaninMax = 2
	}
	if cfg.DelayMax <= 0 {
		cfg.DelayMax = 10
	}
	if cfg.Net.Nodes < 1 {
		cfg.Net = DefaultConfig(20)
	}
	d := &netlist.Design{Name: fmt.Sprintf("rand%dx%d", cfg.Levels, cfg.Width)}
	trees := make([][]*rctree.Tree, cfg.Levels)
	for level := 0; level < cfg.Levels; level++ {
		trees[level] = make([]*rctree.Tree, cfg.Width)
		for j := 0; j < cfg.Width; j++ {
			tree := Tree(rng, cfg.Net)
			name := fmt.Sprintf("l%dn%d", level, j)
			trees[level][j] = tree
			d.Nets = append(d.Nets, netlist.DesignNet{Name: name, Tree: tree})
			if level == 0 {
				continue
			}
			fanin := 1 + rng.Intn(cfg.FaninMax)
			for k := 0; k < fanin; k++ {
				src := rng.Intn(cfg.Width)
				driver := trees[level-1][src]
				outs := driver.Outputs()
				out := outs[rng.Intn(len(outs))]
				d.Stages = append(d.Stages, netlist.Stage{
					FromNet:    fmt.Sprintf("l%dn%d", level-1, src),
					FromOutput: driver.Name(out),
					ToNet:      name,
					Delay:      (1 - rng.Float64()) * cfg.DelayMax, // (0, DelayMax]
				})
			}
		}
	}
	return d
}

// DesignSeed generates a random design from a fresh source seeded with seed.
func DesignSeed(seed int64, cfg DesignConfig) *netlist.Design {
	return Design(rand.New(rand.NewSource(seed)), cfg)
}
