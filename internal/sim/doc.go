// Package sim is the exact linear-circuit simulator used to reproduce the
// paper's Figure 11 ("the exact solution, found from circuit simulation").
//
// Distributed RC lines are discretized into N-section lumped pi ladders
// (Discretize); the resulting pure-RC network C·v̇ = −G·v + b·vin(t) is
// then solved two independent ways:
//
//   - exactly, by symmetrizing and diagonalizing the state matrix with a
//     Jacobi eigensolver, giving the response as a finite sum of
//     exponentials (Circuit.EigenResponse → Response), and
//   - numerically, by backward-Euler or trapezoidal time stepping
//     (Circuit.Transient), which cross-checks the eigen path in tests.
//
// Because the discretized network is itself an RC tree, the
// Penfield–Rubinstein bounds evaluated on it must bracket the simulated
// response exactly — the property test at the heart of this reproduction.
//
// The typical pipeline, as wrapped by the façade's SimulateStep:
//
//	lumped, mapping, _ := sim.Discretize(tree, 16)
//	ckt, _ := sim.NewCircuit(lumped)
//	resp, _ := ckt.EigenResponse()
//	v := resp.Voltage(idx, t) // idx via ckt.Index(mapping[node])
//
// A Response is immutable once built and safe for concurrent queries;
// building one costs O(n³) in the node count, so discretization depth is
// the accuracy/cost dial (error falls as 1/segments²).
package sim
