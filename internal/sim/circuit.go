package sim

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/rctree"
)

// Circuit is the nodal formulation of a lumped RC tree driven by an ideal
// step source at the input:
//
//	C·v̇ = −G·v + b·vin(t)
//
// where v collects the voltages of all non-input nodes, G is the conductance
// Laplacian restricted to those nodes (its diagonal includes conductance to
// the input), C is the diagonal of node capacitances, and b holds each
// node's conductance to the input.
type Circuit struct {
	n     int
	g     *linalg.Matrix
	c     []float64
	b     []float64
	names []string
	tree  *rctree.Tree
}

// NewCircuit assembles the nodal matrices for a lumped tree. Distributed
// lines must be removed with Discretize first.
func NewCircuit(t *rctree.Tree) (*Circuit, error) {
	if !IsLumped(t) {
		return nil, fmt.Errorf("sim: tree contains distributed lines; call Discretize first")
	}
	n := t.NumNodes() - 1
	if n < 1 {
		return nil, fmt.Errorf("sim: tree has no non-input nodes")
	}
	c := &Circuit{
		n:     n,
		g:     linalg.NewMatrix(n, n),
		c:     make([]float64, n),
		b:     make([]float64, n),
		names: make([]string, n),
		tree:  t,
	}
	for id := 1; id < t.NumNodes(); id++ {
		node := rctree.NodeID(id)
		i := id - 1
		c.names[i] = t.Name(node)
		c.c[i] = t.NodeCap(node)
		kind, r, _ := t.Edge(node)
		if kind != rctree.EdgeResistor {
			return nil, fmt.Errorf("sim: node %q has non-resistor parent edge", t.Name(node))
		}
		if r <= 0 {
			return nil, fmt.Errorf("sim: node %q has nonpositive resistance %g", t.Name(node), r)
		}
		gcond := 1 / r
		parent := t.Parent(node)
		c.g.Add(i, i, gcond)
		if parent == rctree.Root {
			c.b[i] += gcond
		} else {
			j := int(parent) - 1
			c.g.Add(j, j, gcond)
			c.g.Add(i, j, -gcond)
			c.g.Add(j, i, -gcond)
		}
	}
	return c, nil
}

// NumNodes returns the number of non-input nodes.
func (c *Circuit) NumNodes() int { return c.n }

// Index converts a tree node ID to the circuit's 0-based unknown index.
func (c *Circuit) Index(id rctree.NodeID) (int, error) {
	if id == rctree.Root {
		return 0, fmt.Errorf("sim: the input node is driven, not solved")
	}
	i := int(id) - 1
	if i < 0 || i >= c.n {
		return 0, fmt.Errorf("sim: node id %d out of range", id)
	}
	return i, nil
}

// Name returns the name of unknown i.
func (c *Circuit) Name(i int) string { return c.names[i] }

// TotalSimCap returns the simulated (non-input) capacitance; used for
// sanity checks against the tree's total.
func (c *Circuit) TotalSimCap() float64 {
	var sum float64
	for _, v := range c.c {
		sum += v
	}
	return sum
}
