package sim

import (
	"fmt"

	"repro/internal/linalg"
)

// Method selects the implicit integration scheme for Transient.
type Method int

const (
	// BackwardEuler is first-order, L-stable: (C/h + G)·v⁺ = C/h·v + b.
	BackwardEuler Method = iota
	// Trapezoidal is second-order, A-stable:
	// (C/h + G/2)·v⁺ = (C/h − G/2)·v + b.
	Trapezoidal
)

func (m Method) String() string {
	switch m {
	case BackwardEuler:
		return "backward-euler"
	case Trapezoidal:
		return "trapezoidal"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Waveform is a sampled transient solution: V[k][i] is the voltage of
// circuit unknown i at Times[k].
type Waveform struct {
	Times []float64
	V     [][]float64
}

// At returns the voltage of unknown i at sample k.
func (w *Waveform) At(k, i int) float64 { return w.V[k][i] }

// Transient integrates the step response over steps uniform intervals of
// width h, starting from v(0) = 0 with vin = 1 for t > 0. The implicit
// system matrix is factored once (LU) and reused for every step.
//
// Rows for zero-capacitance nodes are algebraic constraints (G·v = b); they
// are always treated fully implicitly, which is exact and avoids the
// well-known trapezoidal oscillation on index-1 constraints with an
// inconsistent initial condition.
func (c *Circuit) Transient(m Method, h float64, steps int) (*Waveform, error) {
	return c.TransientInput(m, h, steps, func(t float64) float64 {
		if t > 0 {
			return 1
		}
		return 1 // the step has already fired at every t the stepper samples
	})
}

// TransientInput integrates the response to an arbitrary input waveform
// vin(t) (sampled at step endpoints), with the same single-factorization
// scheme as Transient. The initial state is v(0) = 0.
func (c *Circuit) TransientInput(m Method, h float64, steps int, vin func(t float64) float64) (*Waveform, error) {
	if h <= 0 {
		return nil, fmt.Errorf("sim: step size must be positive, got %g", h)
	}
	if steps < 1 {
		return nil, fmt.Errorf("sim: steps must be >= 1, got %d", steps)
	}
	if m != BackwardEuler && m != Trapezoidal {
		return nil, fmt.Errorf("sim: unknown method %v", m)
	}
	n := c.n
	lhs := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		implicitRow := m == BackwardEuler || c.c[i] == 0
		for j := 0; j < n; j++ {
			g := c.g.At(i, j)
			if implicitRow {
				lhs.Set(i, j, g)
			} else {
				lhs.Set(i, j, g/2)
			}
		}
		lhs.Add(i, i, c.c[i]/h)
	}
	lu, err := linalg.FactorLU(lhs)
	if err != nil {
		return nil, fmt.Errorf("sim: transient system singular: %w", err)
	}

	v := make([]float64, n)
	wave := &Waveform{Times: make([]float64, steps+1), V: make([][]float64, steps+1)}
	wave.V[0] = append([]float64(nil), v...)
	rhs := make([]float64, n)
	for k := 1; k <= steps; k++ {
		tPrev, tNext := float64(k-1)*h, float64(k)*h
		uPrev, uNext := vin(tPrev), vin(tNext)
		for i := 0; i < n; i++ {
			if m == Trapezoidal && c.c[i] != 0 {
				// Trapezoid averages the source and the conductance term.
				rhs[i] = c.c[i]/h*v[i] + c.b[i]*(uPrev+uNext)/2
				var gv float64
				for j := 0; j < n; j++ {
					gv += c.g.At(i, j) * v[j]
				}
				rhs[i] -= gv / 2
			} else {
				// Backward Euler and algebraic rows use the endpoint value.
				rhs[i] = c.c[i]/h*v[i] + c.b[i]*uNext
			}
		}
		next, err := lu.Solve(rhs)
		if err != nil {
			return nil, err
		}
		copy(v, next)
		wave.Times[k] = tNext
		wave.V[k] = append([]float64(nil), v...)
	}
	return wave, nil
}

// CrossingTime returns the first sampled time at which unknown i meets or
// exceeds threshold v, with linear interpolation between samples. It returns
// −1 when the waveform never reaches the threshold in its simulated window.
func (w *Waveform) CrossingTime(i int, v float64) float64 {
	if v <= 0 {
		return 0
	}
	for k := 1; k < len(w.Times); k++ {
		if w.V[k][i] >= v {
			v0, v1 := w.V[k-1][i], w.V[k][i]
			t0, t1 := w.Times[k-1], w.Times[k]
			if v1 == v0 {
				return t1
			}
			return t0 + (t1-t0)*(v-v0)/(v1-v0)
		}
	}
	return -1
}
