package sim

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Response is the exact unit-step response of a circuit as a finite sum of
// decaying exponentials:
//
//	v_i(t) = 1 + Σ_m A[i][m] · e^(−Lambda[m]·t)   for t >= 0
//
// obtained by eliminating zero-capacitance nodes exactly (Schur complement)
// and diagonalizing the symmetrized state matrix. For an RC tree the
// response of every node rises monotonically from 0 to 1 (proven in the
// paper's reference [1]), which CrossingTime exploits.
type Response struct {
	Lambda []float64   // decay rates, ascending, all > 0
	A      [][]float64 // per circuit unknown: modal coefficients
}

// EigenResponse computes the exact step response of the circuit.
func (c *Circuit) EigenResponse() (*Response, error) {
	// Partition unknowns into capacitive (S) and zero-capacitance (Z) sets.
	var sIdx, zIdx []int
	for i, cap := range c.c {
		if cap > 0 {
			sIdx = append(sIdx, i)
		} else {
			zIdx = append(zIdx, i)
		}
	}
	if len(sIdx) == 0 {
		return nil, fmt.Errorf("sim: circuit has no capacitive nodes; response is instantaneous")
	}
	ns, nz := len(sIdx), len(zIdx)

	gss := submatrix(c.g, sIdx, sIdx)
	bs := subvector(c.b, sIdx)

	// Exact elimination of zero-cap nodes:
	//   Geff = Gss − Gsz·Gzz⁻¹·Gzs,  beff = bs − Gsz·Gzz⁻¹·bz,
	// and vZ(t) = Gzz⁻¹·(bz·vin − Gzs·vS(t)).
	var gzzInvGzs *linalg.Matrix // nz×ns
	var gzzInvBz []float64
	if nz > 0 {
		gzz := submatrix(c.g, zIdx, zIdx)
		gzs := submatrix(c.g, zIdx, sIdx)
		bz := subvector(c.b, zIdx)
		chol, err := linalg.FactorCholesky(gzz)
		if err != nil {
			return nil, fmt.Errorf("sim: zero-cap block not SPD (disconnected node?): %w", err)
		}
		gzzInvGzs = linalg.NewMatrix(nz, ns)
		for col := 0; col < ns; col++ {
			rhs := make([]float64, nz)
			for r := 0; r < nz; r++ {
				rhs[r] = gzs.At(r, col)
			}
			x, err := chol.Solve(rhs)
			if err != nil {
				return nil, err
			}
			for r := 0; r < nz; r++ {
				gzzInvGzs.Set(r, col, x[r])
			}
		}
		gzzInvBz, err = chol.Solve(bz)
		if err != nil {
			return nil, err
		}
		// Geff = Gss − Gzsᵀ·(Gzz⁻¹·Gzs); beff = bs − Gzsᵀ·(Gzz⁻¹·bz).
		for i := 0; i < ns; i++ {
			for j := 0; j < ns; j++ {
				var s float64
				for k := 0; k < nz; k++ {
					s += gzs.At(k, i) * gzzInvGzs.At(k, j)
				}
				gss.Add(i, j, -s)
			}
			var s float64
			for k := 0; k < nz; k++ {
				s += gzs.At(k, i) * gzzInvBz[k]
			}
			bs[i] -= s
		}
	}

	// Symmetrize: A = C^(−1/2)·Geff·C^(−1/2) is SPD; y = C^(1/2)(v−1).
	sqrtC := make([]float64, ns)
	for i, si := range sIdx {
		sqrtC[i] = math.Sqrt(c.c[si])
	}
	for i := 0; i < ns; i++ {
		for j := 0; j < ns; j++ {
			gss.Set(i, j, gss.At(i, j)/(sqrtC[i]*sqrtC[j]))
		}
	}
	eig, err := linalg.JacobiEigen(gss)
	if err != nil {
		return nil, fmt.Errorf("sim: eigendecomposition failed: %w", err)
	}
	for _, lam := range eig.Values {
		if lam <= 0 {
			return nil, fmt.Errorf("sim: nonpositive eigenvalue %g; network is not a grounded RC tree", lam)
		}
	}

	// Initial condition: v_S(0) = 0, steady state = 1, so y(0) = −C^(1/2)·1.
	y0 := make([]float64, ns)
	for i := 0; i < ns; i++ {
		y0[i] = -sqrtC[i]
	}
	// Modal weights w_m = (Qᵀ·y0)_m; then
	//   v_S,i(t) = 1 + (1/√C_i)·Σ_m Q_im·w_m·e^(−λ_m t).
	q := eig.Vectors
	w := make([]float64, ns)
	for m := 0; m < ns; m++ {
		var s float64
		for i := 0; i < ns; i++ {
			s += q.At(i, m) * y0[i]
		}
		w[m] = s
	}

	resp := &Response{Lambda: eig.Values, A: make([][]float64, c.n)}
	aS := make([][]float64, ns) // coefficients for capacitive unknowns
	for i := 0; i < ns; i++ {
		coeff := make([]float64, ns)
		for m := 0; m < ns; m++ {
			coeff[m] = q.At(i, m) * w[m] / sqrtC[i]
		}
		aS[i] = coeff
		resp.A[sIdx[i]] = coeff
	}
	// Zero-cap nodes: v_Z(t) = 1 − Gzz⁻¹·Gzs·(v_S(t) − 1), so their modal
	// coefficients are −(Gzz⁻¹·Gzs)·aS.
	for zi, z := range zIdx {
		coeff := make([]float64, ns)
		for m := 0; m < ns; m++ {
			var s float64
			for i := 0; i < ns; i++ {
				s += gzzInvGzs.At(zi, i) * aS[i][m]
			}
			coeff[m] = -s
		}
		resp.A[z] = coeff
	}
	return resp, nil
}

func submatrix(m *linalg.Matrix, rows, cols []int) *linalg.Matrix {
	out := linalg.NewMatrix(len(rows), len(cols))
	for i, r := range rows {
		for j, c := range cols {
			out.Set(i, j, m.At(r, c))
		}
	}
	return out
}

func subvector(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = v[j]
	}
	return out
}

// Voltage evaluates the step response of unknown i at time t.
func (r *Response) Voltage(i int, t float64) float64 {
	if t < 0 {
		return 0
	}
	v := 1.0
	for m, lam := range r.Lambda {
		v += r.A[i][m] * math.Exp(-lam*t)
	}
	return v
}

// ElmoreDelay returns the first moment of the impulse response of unknown i,
// ∫(1−v)dt = Σ_m −A_m/λ_m, which must equal TDe — a strong independent check
// used by the test suite (DESIGN invariant 7).
func (r *Response) ElmoreDelay(i int) float64 {
	var s float64
	for m, lam := range r.Lambda {
		s -= r.A[i][m] / lam
	}
	return s
}

// CrossingTime returns the time at which the (monotone) response of unknown
// i reaches threshold v in (0,1), by bracketed bisection to relative
// precision eps. It returns +Inf if the threshold is never reached (v >= 1).
func (r *Response) CrossingTime(i int, v, eps float64) float64 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return math.Inf(1)
	}
	if eps <= 0 {
		eps = 1e-12
	}
	// Bracket: expand hi until v(hi) >= v.
	slowest := r.Lambda[0]
	hi := 1 / slowest
	for r.Voltage(i, hi) < v {
		hi *= 2
		if math.IsInf(hi, 1) {
			return math.Inf(1)
		}
	}
	lo := 0.0
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if r.Voltage(i, mid) < v {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= eps*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}
