package sim

import (
	"fmt"

	"repro/internal/rctree"
)

// Discretize replaces every distributed line of t by segments lumped
// pi sections (series R/segments with C/(2·segments) shunts at both ends),
// which converges to the distributed behaviour as O(1/segments²). It returns
// the lumped tree and a mapping from original node IDs to new ones, so
// outputs keep their identity.
//
// Already-lumped trees pass through with a renaming-only mapping.
func Discretize(t *rctree.Tree, segments int) (*rctree.Tree, map[rctree.NodeID]rctree.NodeID, error) {
	if segments < 1 {
		return nil, nil, fmt.Errorf("sim: segments must be >= 1, got %d", segments)
	}
	b := rctree.NewBuilder(t.Name(rctree.Root))
	mapping := map[rctree.NodeID]rctree.NodeID{rctree.Root: rctree.Root}

	var rec func(old rctree.NodeID) error
	rec = func(old rctree.NodeID) error {
		for _, ch := range t.Children(old) {
			kind, r, c := t.Edge(ch)
			parent := mapping[old]
			var newID rctree.NodeID
			switch kind {
			case rctree.EdgeResistor:
				newID = b.Resistor(parent, t.Name(ch), r)
			case rctree.EdgeLine:
				newID = discretizeLine(b, parent, t.Name(ch), r, c, segments)
			default:
				return fmt.Errorf("sim: unexpected edge kind %v", kind)
			}
			mapping[ch] = newID
			if nc := t.NodeCap(ch); nc > 0 {
				b.Capacitor(newID, nc)
			}
			if err := rec(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if nc := t.NodeCap(rctree.Root); nc > 0 {
		// Capacitance at the driven input is invisible to the response (the
		// source holds the node); keep it for capacitance bookkeeping.
		b.Capacitor(rctree.Root, nc)
	}
	if err := rec(rctree.Root); err != nil {
		return nil, nil, err
	}
	for _, e := range t.Outputs() {
		b.Output(mapping[e])
	}
	lumped, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("sim: discretized tree invalid: %w", err)
	}
	// Re-resolve mapping against the built tree (IDs are stable because the
	// builder assigns them in insertion order, but names are authoritative).
	final := make(map[rctree.NodeID]rctree.NodeID, len(mapping))
	for oldID, newID := range mapping {
		final[oldID] = newID
	}
	return lumped, final, nil
}

// discretizeLine adds a pi-ladder for one line and returns its far node.
func discretizeLine(b *rctree.Builder, parent rctree.NodeID, name string, r, c float64, segs int) rctree.NodeID {
	rs := r / float64(segs)
	half := c / (2 * float64(segs))
	cur := parent
	for s := 0; s < segs; s++ {
		b.Capacitor(cur, half)
		segName := fmt.Sprintf("%s.s%d", name, s+1)
		if s == segs-1 {
			segName = name // the far end keeps the original node's name
		}
		cur = b.Resistor(cur, segName, rs)
		b.Capacitor(cur, half)
	}
	return cur
}

// IsLumped reports whether the tree contains no distributed lines.
func IsLumped(t *rctree.Tree) bool {
	lumped := true
	t.Walk(func(id rctree.NodeID) {
		if kind, _, _ := t.Edge(id); kind == rctree.EdgeLine {
			lumped = false
		}
	})
	return lumped
}
