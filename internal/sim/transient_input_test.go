package sim

import (
	"math"
	"testing"

	"repro/internal/rctree"
)

// TestTransientInputRamp: single-pole response to a finite ramp, against the
// textbook closed form (tau = 1, rise time T):
//
//	v(t) = (t − (1 − e^(−t)))/T                    t <= T
//	v(t) = 1 − (e^(−(t−T)) − e^(−t))/T             t > T
func TestTransientInputRamp(t *testing.T) {
	b := rctree.NewBuilder("in")
	n := b.Resistor(rctree.Root, "out", 1000)
	b.Capacitor(n, 1e-3)
	b.Output(n)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := NewCircuit(tr)
	if err != nil {
		t.Fatal(err)
	}
	const T = 2.0
	ramp := func(tt float64) float64 {
		switch {
		case tt <= 0:
			return 0
		case tt >= T:
			return 1
		}
		return tt / T
	}
	i, _ := ckt.Index(n)
	for _, m := range []Method{BackwardEuler, Trapezoidal} {
		h := 1e-3
		steps := 6000
		w, err := ckt.TransientInput(m, h, steps, ramp)
		if err != nil {
			t.Fatal(err)
		}
		tol := 5e-3 // BE first order at h=1e-3 over tau=1
		if m == Trapezoidal {
			tol = 5e-6
		}
		for k := 0; k < len(w.Times); k += 800 {
			tt := w.Times[k]
			var want float64
			if tt <= T {
				want = (tt - (1 - math.Exp(-tt))) / T
			} else {
				want = 1 - (math.Exp(-(tt-T))-math.Exp(-tt))/T
			}
			if got := w.At(k, i); math.Abs(got-want) > tol {
				t.Errorf("%v: v(%g) = %.8f, want %.8f", m, tt, got, want)
			}
		}
	}
}

// TestTransientMatchesTransientInputStep: the step-specialized path and the
// general path agree exactly for a unit step.
func TestTransientMatchesTransientInputStep(t *testing.T) {
	b := rctree.NewBuilder("in")
	x := b.Resistor(rctree.Root, "x", 100)
	b.Capacitor(x, 0.01)
	y := b.Resistor(x, "y", 200)
	b.Capacitor(y, 0.02)
	b.Output(y)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := NewCircuit(tr)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := ckt.Transient(Trapezoidal, 0.05, 200)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ckt.TransientInput(Trapezoidal, 0.05, 200, func(float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	for k := range w1.Times {
		for i := 0; i < ckt.NumNodes(); i++ {
			if w1.At(k, i) != w2.At(k, i) {
				t.Fatalf("paths diverge at step %d node %d", k, i)
			}
		}
	}
}
