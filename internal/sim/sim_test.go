package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/randnet"
	"repro/internal/rctree"
)

func singleRC(t *testing.T, r, c float64) (*rctree.Tree, rctree.NodeID) {
	t.Helper()
	b := rctree.NewBuilder("in")
	n := b.Resistor(rctree.Root, "out", r)
	b.Capacitor(n, c)
	b.Output(n)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr, n
}

// TestSingleRCAnalytic: v(t) = 1 − e^(−t/RC) for the canonical one-pole
// circuit, from both the eigen path and the transient stepper.
func TestSingleRCAnalytic(t *testing.T) {
	const R, C = 1000.0, 1e-3 // tau = 1
	tr, out := singleRC(t, R, C)
	ckt, err := NewCircuit(tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ckt.EigenResponse()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ckt.Index(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 0.1, 0.5, 1, 2, 5} {
		want := 1 - math.Exp(-tt)
		if got := resp.Voltage(idx, tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("eigen v(%g) = %g, want %g", tt, got, want)
		}
	}
	// Elmore delay = tau for one pole.
	if got := resp.ElmoreDelay(idx); math.Abs(got-1) > 1e-12 {
		t.Errorf("ElmoreDelay = %g, want 1", got)
	}
	// Crossing at v = 1 − 1/e happens at t = tau.
	if got := resp.CrossingTime(idx, 1-1/math.E, 1e-12); math.Abs(got-1) > 1e-9 {
		t.Errorf("CrossingTime = %g, want 1", got)
	}
	// Trapezoidal stepping converges to the same curve.
	wave, err := ckt.Transient(Trapezoidal, 1e-3, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < len(wave.Times); k += 500 {
		want := 1 - math.Exp(-wave.Times[k])
		if got := wave.At(k, idx); math.Abs(got-want) > 1e-6 {
			t.Errorf("trap v(%g) = %g, want %g", wave.Times[k], got, want)
		}
	}
}

// TestZeroCapNodeElimination: a capacitor-less junction node is eliminated
// exactly; the response must match a transient solve of the full system.
func TestZeroCapNodeElimination(t *testing.T) {
	b := rctree.NewBuilder("in")
	junction := b.Resistor(rctree.Root, "junction", 100) // no capacitor here
	left := b.Resistor(junction, "left", 200)
	b.Capacitor(left, 1e-3)
	right := b.Resistor(junction, "right", 300)
	b.Capacitor(right, 2e-3)
	b.Output(left)
	b.Output(right)
	b.Output(junction)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := NewCircuit(tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ckt.EigenResponse()
	if err != nil {
		t.Fatal(err)
	}
	wave, err := ckt.Transient(Trapezoidal, 2e-4, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []rctree.NodeID{junction, left, right} {
		i, err := ckt.Index(node)
		if err != nil {
			t.Fatal(err)
		}
		for k := 250; k < len(wave.Times); k += 1750 {
			tt := wave.Times[k]
			eig, trap := resp.Voltage(i, tt), wave.At(k, i)
			// The step discontinuity at t=0 costs the stepper O(h) once;
			// afterwards the curves track to a few parts in 1e4.
			if math.Abs(eig-trap) > 5e-4 {
				t.Errorf("node %q at t=%g: eigen %g vs trap %g", tr.Name(node), tt, eig, trap)
			}
		}
	}
	// A zero-capacitance junction is purely resistive, so at t=0+ it jumps
	// to the divider voltage between the 1 V input (through 100 Ω) and the
	// still-discharged capacitive nodes (through 200 Ω and 300 Ω):
	// (1/100) / (1/100 + 1/200 + 1/300) = 6/11.
	ji, _ := ckt.Index(junction)
	if v0, want := resp.Voltage(ji, 0), 6.0/11; math.Abs(v0-want) > 1e-9 {
		t.Errorf("junction v(0+) = %g, want %g", v0, want)
	}
}

// TestElmoreDelayMatchesTree: DESIGN invariant 7 — the first moment of the
// simulated response equals the tree's TDe, for every node of random lumped
// trees.
func TestElmoreDelayMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		cfg := randnet.DefaultConfig(1 + rng.Intn(25))
		cfg.LineProb = 0 // lumped only
		tr := randnet.Tree(rng, cfg)
		ckt, err := NewCircuit(tr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		resp, err := ckt.EigenResponse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for id := 1; id < tr.NumNodes(); id++ {
			tm, err := tr.CharacteristicTimes(rctree.NodeID(id))
			if err != nil {
				t.Fatal(err)
			}
			i, _ := ckt.Index(rctree.NodeID(id))
			got := resp.ElmoreDelay(i)
			if math.Abs(got-tm.TD) > 1e-6*(1+tm.TD) {
				t.Fatalf("trial %d node %d: moment %g != TD %g\n%s", trial, id, got, tm.TD, tr)
			}
		}
	}
}

// TestBoundsBracketExactResponse is the heart of the reproduction (DESIGN
// invariant 5): on random lumped trees, the Penfield–Rubinstein envelope
// brackets the exact simulated response at every output, in both voltage
// and time.
func TestBoundsBracketExactResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 80; trial++ {
		cfg := randnet.DefaultConfig(1 + rng.Intn(20))
		cfg.LineProb = 0
		tr := randnet.Tree(rng, cfg)
		ckt, err := NewCircuit(tr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		resp, err := ckt.EigenResponse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, e := range tr.Outputs() {
			tm, err := tr.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			bounds, err := core.New(tm)
			if err != nil {
				t.Fatal(err)
			}
			i, _ := ckt.Index(e)
			// Voltage bracket across a wide time range.
			for s := 0; s <= 40; s++ {
				tt := tm.TP * 3 * float64(s) / 40
				v := resp.Voltage(i, tt)
				lo, hi := bounds.VMin(tt), bounds.VMax(tt)
				if v < lo-1e-8 || v > hi+1e-8 {
					t.Fatalf("trial %d output %q t=%g: v=%.9f outside [%.9f, %.9f]\n%s",
						trial, tr.Name(e), tt, v, lo, hi, tr)
				}
			}
			// Time bracket at several thresholds.
			for _, v := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
				cross := resp.CrossingTime(i, v, 1e-12)
				lo, hi := bounds.TMin(v), bounds.TMax(v)
				if cross < lo-1e-6*(1+lo) || cross > hi+1e-6*(1+hi) {
					t.Fatalf("trial %d output %q v=%g: cross=%g outside [%g, %g]",
						trial, tr.Name(e), v, cross, lo, hi)
				}
				// OK must agree with reality (DESIGN invariant 9).
				if bounds.OK(v, cross*0.99) == core.Passes && cross > cross*0.99 {
					// Passes asserts crossing <= deadline.
					if cross > cross*0.99+1e-9 {
						t.Fatalf("trial %d: OK certified an unmet deadline", trial)
					}
				}
			}
		}
	}
}

// TestMonotoneResponse: RC tree step responses rise monotonically (the
// property underlying all bound inversions).
func TestMonotoneResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		cfg := randnet.DefaultConfig(1 + rng.Intn(15))
		cfg.LineProb = 0
		tr := randnet.Tree(rng, cfg)
		ckt, err := NewCircuit(tr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ckt.EigenResponse()
		if err != nil {
			t.Fatal(err)
		}
		tp := tr.TPTotal()
		for i := 0; i < ckt.NumNodes(); i++ {
			prev := -1e-12
			for s := 0; s <= 100; s++ {
				v := resp.Voltage(i, tp*5*float64(s)/100)
				if v < prev-1e-9 {
					t.Fatalf("trial %d node %d: response not monotone (%g then %g)", trial, i, prev, v)
				}
				prev = v
			}
		}
	}
}

// TestDiscretizeConvergence: the 50% crossing of a discretized line
// converges as the section count grows, and pi sections converge fast.
func TestDiscretizeConvergence(t *testing.T) {
	b := rctree.NewBuilder("in")
	far := b.Line(rctree.Root, "far", 1000, 1e-3) // tau-ish = 1
	b.Output(far)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cross := func(segs int) float64 {
		lumped, mapping, err := Discretize(tr, segs)
		if err != nil {
			t.Fatal(err)
		}
		ckt, err := NewCircuit(lumped)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ckt.EigenResponse()
		if err != nil {
			t.Fatal(err)
		}
		i, err := ckt.Index(mapping[far])
		if err != nil {
			t.Fatal(err)
		}
		return resp.CrossingTime(i, 0.5, 1e-12)
	}
	c16, c64 := cross(16), cross(64)
	// The diffusion-equation 50% crossing for a unit-RC open-ended line.
	if math.Abs(c16-c64) > 0.01*c64 {
		t.Errorf("discretization not converged: t50(16)=%g t50(64)=%g", c16, c64)
	}
	// Against the distributed-line bounds: TD=RC/2=0.5, TR=RC/3.
	tm, err := tr.CharacteristicTimes(far)
	if err != nil {
		t.Fatal(err)
	}
	bounds := core.MustNew(tm)
	if c64 < bounds.TMin(0.5) || c64 > bounds.TMax(0.5) {
		t.Errorf("distributed t50=%g outside bounds [%g, %g]",
			c64, bounds.TMin(0.5), bounds.TMax(0.5))
	}
}

// TestDiscretizePreservesTotals: discretization preserves total R and C and
// keeps the Elmore delay of on-path outputs within O(1/segs²).
func TestDiscretizePreservesTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 30; trial++ {
		tr := randnet.Tree(rng, randnet.DefaultConfig(1+rng.Intn(15)))
		lumped, mapping, err := Discretize(tr, 8)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(lumped.TotalCap()-tr.TotalCap()) > 1e-9*(1+tr.TotalCap()) {
			t.Fatalf("trial %d: capacitance changed: %g -> %g", trial, tr.TotalCap(), lumped.TotalCap())
		}
		if math.Abs(lumped.TotalRes()-tr.TotalRes()) > 1e-9*(1+tr.TotalRes()) {
			t.Fatalf("trial %d: resistance changed: %g -> %g", trial, tr.TotalRes(), lumped.TotalRes())
		}
		for _, e := range tr.Outputs() {
			orig, err := tr.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			disc, err := lumped.CharacteristicTimes(mapping[e])
			if err != nil {
				t.Fatal(err)
			}
			// Pi sections preserve the Elmore delay of a line exactly.
			if math.Abs(orig.TD-disc.TD) > 1e-6*(1+orig.TD) {
				t.Fatalf("trial %d: TD %g -> %g after discretization", trial, orig.TD, disc.TD)
			}
		}
	}
}

func TestDiscretizeErrors(t *testing.T) {
	tr, _ := singleRC(t, 10, 1)
	if _, _, err := Discretize(tr, 0); err == nil {
		t.Error("Discretize accepted 0 segments")
	}
}

func TestNewCircuitRejectsLines(t *testing.T) {
	b := rctree.NewBuilder("in")
	far := b.Line(rctree.Root, "far", 10, 1)
	b.Output(far)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCircuit(tr); err == nil {
		t.Error("NewCircuit accepted a tree with distributed lines")
	}
	if IsLumped(tr) {
		t.Error("IsLumped(true) for a tree with lines")
	}
}

func TestCircuitIndexErrors(t *testing.T) {
	tr, out := singleRC(t, 10, 1)
	ckt, err := NewCircuit(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckt.Index(rctree.Root); err == nil {
		t.Error("Index accepted the input node")
	}
	if _, err := ckt.Index(rctree.NodeID(99)); err == nil {
		t.Error("Index accepted out-of-range id")
	}
	i, err := ckt.Index(out)
	if err != nil || ckt.Name(i) != "out" {
		t.Errorf("Index(out) = %d (%q), %v", i, ckt.Name(i), err)
	}
	if got := ckt.TotalSimCap(); got != 1 {
		t.Errorf("TotalSimCap = %g, want 1", got)
	}
}

func TestTransientArgumentsAndMethods(t *testing.T) {
	tr, _ := singleRC(t, 10, 1)
	ckt, err := NewCircuit(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckt.Transient(BackwardEuler, 0, 10); err == nil {
		t.Error("accepted zero step size")
	}
	if _, err := ckt.Transient(BackwardEuler, 1, 0); err == nil {
		t.Error("accepted zero steps")
	}
	if _, err := ckt.Transient(Method(9), 1, 1); err == nil {
		t.Error("accepted unknown method")
	}
	if BackwardEuler.String() != "backward-euler" || Trapezoidal.String() != "trapezoidal" {
		t.Error("Method.String wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown Method.String empty")
	}
}

// TestBackwardEulerFirstOrder: BE converges to the eigen solution as h
// shrinks, from below in accuracy relative to trapezoidal.
func TestBackwardEulerFirstOrder(t *testing.T) {
	tr, out := singleRC(t, 1000, 1e-3) // tau = 1
	ckt, err := NewCircuit(tr)
	if err != nil {
		t.Fatal(err)
	}
	i, _ := ckt.Index(out)
	errAt := func(m Method, h float64) float64 {
		steps := int(2 / h)
		w, err := ckt.Transient(m, h, steps)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for k := range w.Times {
			want := 1 - math.Exp(-w.Times[k])
			if d := math.Abs(w.At(k, i) - want); d > worst {
				worst = d
			}
		}
		return worst
	}
	beCoarse, beFine := errAt(BackwardEuler, 0.02), errAt(BackwardEuler, 0.01)
	ratio := beCoarse / beFine
	if ratio < 1.7 || ratio > 2.4 {
		t.Errorf("BE error ratio %g, want ~2 (first order)", ratio)
	}
	trCoarse, trFine := errAt(Trapezoidal, 0.02), errAt(Trapezoidal, 0.01)
	trRatio := trCoarse / trFine
	if trRatio < 3.4 || trRatio > 4.8 {
		t.Errorf("trapezoidal error ratio %g, want ~4 (second order)", trRatio)
	}
}

func TestWaveformCrossingTime(t *testing.T) {
	tr, out := singleRC(t, 1000, 1e-3)
	ckt, err := NewCircuit(tr)
	if err != nil {
		t.Fatal(err)
	}
	i, _ := ckt.Index(out)
	w, err := ckt.Transient(Trapezoidal, 1e-3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	got := w.CrossingTime(i, 0.5)
	want := math.Log(2.0)
	if math.Abs(got-want) > 1e-4 {
		t.Errorf("CrossingTime = %g, want ln2 = %g", got, want)
	}
	if w.CrossingTime(i, 0) != 0 {
		t.Error("CrossingTime(0) != 0")
	}
	if w.CrossingTime(i, 0.99999999) != -1 {
		t.Error("unreachable threshold should return -1")
	}
}

func TestEigenResponseNoCapacitance(t *testing.T) {
	// All capacitance at the driven input: no capacitive unknowns.
	b := rctree.NewBuilder("in")
	b.Capacitor(rctree.Root, 1)
	n := b.Resistor(rctree.Root, "n", 10)
	b.Output(n)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := NewCircuit(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckt.EigenResponse(); err == nil {
		t.Error("EigenResponse accepted a circuit with no capacitive nodes")
	}
}
