// Package linalg provides the small dense linear-algebra kernel used by the
// exact circuit simulator: dense matrices, LU and Cholesky factorizations,
// a tridiagonal solver, and a Jacobi eigensolver for symmetric matrices.
//
// The implementation is deliberately simple, allocation-conscious and
// dependency-free (stdlib only); RC networks of a few thousand nodes factor
// in well under a second, which is all the reproduction needs.
//
// Entry points by task:
//
//   - NewMatrix/Matrix for dense storage and arithmetic;
//   - FactorLU and FactorCholesky for factor-and-solve against general
//     and symmetric-positive-definite systems respectively;
//   - SolveTridiagonal for the O(n) ladder-network special case;
//   - JacobiEigen for the symmetric eigendecomposition behind the
//     simulator's sum-of-exponentials step response.
//
// Everything is float64; matrices are row-major and sized at construction.
// None of the routines are safe for concurrent mutation of the same matrix,
// but distinct matrices may be used from distinct goroutines freely.
package linalg
