package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randSPD(rng *rand.Rand, n int) *Matrix {
	a := randMatrix(rng, n)
	spd := a.Mul(a.Transpose())
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n)) // diagonal boost guarantees positive definiteness
	}
	return spd
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); got != 7 {
		t.Errorf("At = %g, want 7", got)
	}
	c := m.Clone()
	c.Set(0, 1, 0)
	if m.At(0, 1) != 7 {
		t.Error("Clone aliases the original")
	}
	id := Identity(3)
	if !id.IsSymmetric(0) {
		t.Error("identity not symmetric")
	}
	if id.MaxAbs() != 1 {
		t.Errorf("MaxAbs = %g, want 1", id.MaxAbs())
	}
	if s := m.String(); s == "" {
		t.Error("String empty")
	}
}

func TestMulAndMulVec(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := NewMatrix(2, 2)
	b.Set(0, 0, 5)
	b.Set(0, 1, 6)
	b.Set(1, 0, 7)
	b.Set(1, 1, 8)
	p := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %g, want %g", i, j, p.At(i, j), want[i][j])
			}
		}
	}
	v := a.MulVec([]float64{1, -1})
	if v[0] != -1 || v[1] != -1 {
		t.Errorf("MulVec = %v, want [-1 -1]", v)
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i*3+j))
		}
	}
	tt := m.Transpose()
	if tt.Rows != 3 || tt.Cols != 2 {
		t.Fatalf("Transpose dims %dx%d", tt.Rows, tt.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tt.At(j, i) != m.At(i, j) {
				t.Errorf("Transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v, want [7 9]", y)
	}
	if got := NormInf([]float64{-5, 3}); got != 5 {
		t.Errorf("NormInf = %g, want 5", got)
	}
}

// TestLUSolveRandom checks A·x = b residuals on random well-conditioned
// systems of several sizes.
func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 5, 10, 30, 80} {
		a := randSPD(rng, n) // SPD is comfortably nonsingular
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		f, err := FactorLU(a)
		if err != nil {
			t.Fatalf("n=%d: FactorLU: %v", n, err)
		}
		got, err := f.Solve(b)
		if err != nil {
			t.Fatalf("n=%d: Solve: %v", n, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: x[%d] = %g, want %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := FactorLU(a); err == nil {
		t.Error("FactorLU accepted a singular matrix")
	}
	if _, err := FactorLU(NewMatrix(2, 3)); err == nil {
		t.Error("FactorLU accepted a non-square matrix")
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatalf("FactorLU: %v", err)
	}
	x, err := f.Solve([]float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 4 || x[1] != 3 {
		t.Errorf("Solve = %v, want [4 3]", x)
	}
	if got := f.Det(); math.Abs(got+1) > 1e-12 {
		t.Errorf("Det = %g, want -1", got)
	}
}

func TestCholeskyMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 3, 8, 25} {
		a := randSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ch, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: FactorCholesky: %v", n, err)
		}
		lu, err := FactorLU(a)
		if err != nil {
			t.Fatal(err)
		}
		x1, err := ch.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := lu.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8*(1+math.Abs(x2[i])) {
				t.Fatalf("n=%d: Cholesky %g != LU %g at %d", n, x1[i], x2[i], i)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := FactorCholesky(a); err == nil {
		t.Error("FactorCholesky accepted an indefinite matrix")
	}
}

func TestSolveTridiagonal(t *testing.T) {
	// Build a random tridiagonal system, solve with Thomas and dense LU.
	rng := rand.New(rand.NewSource(5))
	n := 12
	sub := make([]float64, n)
	diag := make([]float64, n)
	sup := make([]float64, n)
	rhs := make([]float64, n)
	dense := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		diag[i] = 4 + rng.Float64()
		dense.Set(i, i, diag[i])
		if i > 0 {
			sub[i] = rng.NormFloat64()
			dense.Set(i, i-1, sub[i])
		}
		if i < n-1 {
			sup[i] = rng.NormFloat64()
			dense.Set(i, i+1, sup[i])
		}
		rhs[i] = rng.NormFloat64()
	}
	x, err := SolveTridiagonal(sub, diag, sup, rhs)
	if err != nil {
		t.Fatal(err)
	}
	f, err := FactorLU(dense)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveTridiagonalErrors(t *testing.T) {
	if _, err := SolveTridiagonal([]float64{0}, []float64{0}, []float64{0}, []float64{1}); err == nil {
		t.Error("accepted zero pivot")
	}
	if _, err := SolveTridiagonal([]float64{0, 0}, []float64{1}, []float64{0}, []float64{1}); err == nil {
		t.Error("accepted mismatched bands")
	}
}

// TestJacobiEigenKnown diagonalizes a matrix with a known spectrum.
func TestJacobiEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	e, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-1) > 1e-12 || math.Abs(e.Values[1]-3) > 1e-12 {
		t.Errorf("eigenvalues = %v, want [1 3]", e.Values)
	}
}

// TestJacobiEigenReconstruct property-tests V·diag(λ)·Vᵀ == A and the
// orthogonality of V on random symmetric matrices.
func TestJacobiEigenReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 4, 9, 20} {
		a := randMatrix(rng, n)
		// Symmetrize.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				avg := (a.At(i, j) + a.At(j, i)) / 2
				a.Set(i, j, avg)
				a.Set(j, i, avg)
			}
		}
		e, err := JacobiEigen(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := e.Reconstruct()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(rec.At(i, j)-a.At(i, j)) > 1e-9*(1+a.MaxAbs()) {
					t.Fatalf("n=%d: reconstruction off at %d,%d: %g vs %g",
						n, i, j, rec.At(i, j), a.At(i, j))
				}
			}
		}
		vtv := e.Vectors.Transpose().Mul(e.Vectors)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(vtv.At(i, j)-want) > 1e-10 {
					t.Fatalf("n=%d: eigenvectors not orthonormal at %d,%d: %g", n, i, j, vtv.At(i, j))
				}
			}
		}
		// Eigenvalues ascend.
		for i := 1; i < n; i++ {
			if e.Values[i] < e.Values[i-1] {
				t.Fatalf("n=%d: eigenvalues not sorted: %v", n, e.Values)
			}
		}
	}
}

func TestJacobiEigenRejectsAsymmetric(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 1, 1)
	if _, err := JacobiEigen(a); err == nil {
		t.Error("JacobiEigen accepted an asymmetric matrix")
	}
}

// TestSPDEigenvaluesPositive quick-checks that SPD constructions have an
// all-positive spectrum — the property the simulator relies on for stable
// exponentials.
func TestSPDEigenvaluesPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		e, err := JacobiEigen(randSPD(rng, n))
		if err != nil {
			return false
		}
		for _, lam := range e.Values {
			if lam <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
