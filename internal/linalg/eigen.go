package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym holds the spectral decomposition A = V·diag(λ)·Vᵀ of a symmetric
// matrix, with eigenvalues ascending and eigenvectors in the columns of V.
type EigenSym struct {
	Values  []float64
	Vectors *Matrix // column i is the eigenvector of Values[i]
}

// JacobiEigen diagonalizes a symmetric matrix by cyclic Jacobi rotations.
// The method is unconditionally stable and, for symmetric matrices, accurate
// to machine precision — exactly what the "exact" simulator needs. It errors
// if the matrix is not symmetric or fails to converge.
func JacobiEigen(a *Matrix) (*EigenSym, error) {
	if !a.IsSymmetric(1e-9 * (1 + a.MaxAbs())) {
		return nil, fmt.Errorf("linalg: JacobiEigen requires a symmetric matrix")
	}
	n := a.Rows
	m := a.Clone()
	v := Identity(n)

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += m.At(i, j) * m.At(i, j)
			}
		}
		return s
	}

	scale := m.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	tol := 1e-28 * scale * scale * float64(n*n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() <= tol {
			return finishEigen(m, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				// Classic Jacobi rotation parameters.
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// Apply the rotation to rows/columns p and q of m.
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate the eigenvector rotation.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	if offDiag() <= tol*1e6 {
		// Accept a slightly looser convergence rather than failing: the
		// residual is still negligible against the matrix scale.
		return finishEigen(m, v), nil
	}
	return nil, fmt.Errorf("linalg: Jacobi eigensolver did not converge in %d sweeps", maxSweeps)
}

func finishEigen(m, v *Matrix) *EigenSym {
	n := m.Rows
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return m.At(idx[a], idx[a]) < m.At(idx[b], idx[b]) })
	values := make([]float64, n)
	vectors := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		values[newCol] = m.At(oldCol, oldCol)
		for r := 0; r < n; r++ {
			vectors.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return &EigenSym{Values: values, Vectors: vectors}
}

// Reconstruct rebuilds V·diag(λ)·Vᵀ, used by tests to verify the
// decomposition.
func (e *EigenSym) Reconstruct() *Matrix {
	n := len(e.Values)
	d := NewMatrix(n, n)
	for i, lam := range e.Values {
		d.Set(i, i, lam)
	}
	return e.Vectors.Mul(d).Mul(e.Vectors.Transpose())
}
