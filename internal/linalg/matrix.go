package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v — the natural operation for nodal
// "stamping" of circuit elements.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return out
}

// MulVec returns m·x for a vector x of length m.Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element, a crude norm for tolerances.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// NormInf returns the max-abs element of a vector.
func NormInf(x []float64) float64 {
	var max float64
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}
