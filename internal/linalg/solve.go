package linalg

import (
	"fmt"
	"math"
)

// LU is an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// FactorLU computes the factorization of a square matrix. It fails on
// (numerically) singular input.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at or below the
		// diagonal.
		p, max := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu.At(r, col)); a > max {
				p, max = r, a
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[col*n+j] = lu.Data[col*n+j], lu.Data[p*n+j]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu.Add(r, j, -f*lu.At(col, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
		x[i] /= f.lu.At(i, i)
	}
	return x, nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Cholesky is the factorization A = L·Lᵀ of a symmetric positive-definite
// matrix, roughly twice as fast as LU and a useful validity check: RC
// conductance matrices must be SPD.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the factorization, failing if the matrix is not
// positive definite.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at row %d (pivot %g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns x with A·x = b.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	copy(x, b)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= c.l.At(i, j) * x[j]
		}
		x[i] /= c.l.At(i, i)
	}
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= c.l.At(j, i) * x[j]
		}
		x[i] /= c.l.At(i, i)
	}
	return x, nil
}

// SolveTridiagonal solves a tridiagonal system with the Thomas algorithm:
// sub, diag and sup are the three bands (sub[0] and sup[n-1] unused). It is
// the natural solver for single RC ladders and used to cross-check the dense
// path. The inputs are not modified.
func SolveTridiagonal(sub, diag, sup, rhs []float64) ([]float64, error) {
	n := len(diag)
	if len(sub) != n || len(sup) != n || len(rhs) != n {
		return nil, fmt.Errorf("linalg: tridiagonal band length mismatch")
	}
	c := make([]float64, n)
	d := make([]float64, n)
	if diag[0] == 0 {
		return nil, fmt.Errorf("linalg: zero pivot in tridiagonal solve")
	}
	c[0] = sup[0] / diag[0]
	d[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		denom := diag[i] - sub[i]*c[i-1]
		if denom == 0 {
			return nil, fmt.Errorf("linalg: zero pivot in tridiagonal solve at row %d", i)
		}
		c[i] = sup[i] / denom
		d[i] = (rhs[i] - sub[i]*d[i-1]) / denom
	}
	x := make([]float64, n)
	x[n-1] = d[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = d[i] - c[i]*x[i+1]
	}
	return x, nil
}
