package incr

import (
	"math"
	"testing"

	"repro/internal/rctree"
)

// FuzzEditSequence drives an EditTree with an arbitrary byte-coded edit
// program and asserts the two invariants the subsystem promises: no edit
// sequence panics, and whenever the overlay can be materialized, the
// incremental times of every live node agree with a full recomputation.
func FuzzEditSequence(f *testing.F) {
	f.Add([]byte{0, 10, 1, 20, 2, 3})
	f.Add([]byte{4, 4, 4, 5, 5, 6, 0})
	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0, 7, 7})
	f.Fuzz(func(t *testing.T, program []byte) {
		b := rctree.NewBuilder("in")
		a := b.Resistor(rctree.Root, "a", 10)
		b.Capacitor(a, 2)
		c := b.Line(a, "c", 8, 4)
		d := b.Resistor(a, "d", 3)
		b.Capacitor(d, 1)
		b.Output(c)
		b.Output(d)
		tr, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		et := New(tr)
		slots := tr.NumNodes()
		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i], float64(program[i+1])
			j := NodeID(int(program[i+1]) % slots)
			switch op % 7 {
			case 0:
				_ = et.SetCapacitance(j, arg/8)
			case 1:
				_ = et.SetResistance(j, arg/8+0.125)
			case 2:
				_ = et.SetLine(j, arg/8+0.125, arg/16)
			case 3:
				_ = et.ScaleDriver(arg/64 + 0.25)
			case 4:
				if _, err := et.Grow(j, "", rctree.EdgeLine, arg/8+0.125, arg/16+0.0625); err == nil {
					slots++
				}
			case 5:
				if _, err := et.Grow(j, "", rctree.EdgeResistor, arg/8+0.125, 0); err == nil {
					slots++
				}
			case 6:
				_ = et.Prune(j)
			}
		}
		mt, mapping, err := et.Materialize()
		if err != nil {
			return // e.g. all capacitance edited away; nothing to check
		}
		for i := 0; i < slots; i++ {
			id := NodeID(i)
			if et.Name(id) == "" {
				continue
			}
			got, err := et.Times(id)
			if err != nil {
				t.Fatalf("incremental times for %q: %v", et.Name(id), err)
			}
			want, err := mt.CharacteristicTimes(mapping[id])
			if err != nil {
				t.Fatalf("full times for %q: %v", et.Name(id), err)
			}
			for _, pair := range [][2]float64{{got.TP, want.TP}, {got.TD, want.TD}, {got.TR, want.TR}, {got.Ree, want.Ree}} {
				scale := math.Max(math.Max(math.Abs(pair[0]), math.Abs(pair[1])), 1)
				if math.Abs(pair[0]-pair[1]) > 1e-9*scale {
					t.Fatalf("node %q: incremental %+v != full %+v", et.Name(id), got, want)
				}
			}
		}
	})
}
