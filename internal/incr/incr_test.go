package incr

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/randnet"
	"repro/internal/rctree"
)

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

func timesClose(t *testing.T, got, want rctree.Times, tol float64, context string) {
	t.Helper()
	for _, f := range []struct {
		name string
		a, b float64
	}{
		{"TP", got.TP, want.TP},
		{"TD", got.TD, want.TD},
		{"TR", got.TR, want.TR},
		{"Ree", got.Ree, want.Ree},
	} {
		if !relClose(f.a, f.b, tol) {
			t.Fatalf("%s: %s incremental=%g full=%g (rel err %g)",
				context, f.name, f.a, f.b, math.Abs(f.a-f.b)/math.Max(math.Abs(f.b), 1))
		}
	}
}

// fullTimes recomputes output e from scratch by materializing the overlay
// into a fresh immutable tree and running the O(n) analysis on it.
func fullTimes(t *testing.T, et *EditTree, e NodeID) rctree.Times {
	t.Helper()
	mt, mapping, err := et.Materialize()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	tm, err := mt.CharacteristicTimes(mapping[e])
	if err != nil {
		t.Fatalf("full recompute: %v", err)
	}
	return tm
}

func ladder(t *testing.T, n int) *rctree.Tree {
	t.Helper()
	return randnet.Ladder(n, float64(n), float64(n)/2)
}

// TestNewMatchesAnalysis: a fresh overlay answers exactly what the immutable
// analysis answers, for every output of assorted random trees.
func TestNewMatchesAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		tr := randnet.Tree(rng, randnet.DefaultConfig(1+rng.Intn(60)))
		et := New(tr)
		for _, e := range tr.Outputs() {
			want, err := tr.CharacteristicTimes(e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := et.Times(e)
			if err != nil {
				t.Fatal(err)
			}
			timesClose(t, got, want, 1e-12, "fresh overlay")
		}
	}
}

// TestSetResistanceKnownDelta checks the ΔR bookkeeping on a hand-computable
// chain: in -R1- a(C=2) -R2- b(C=3).
func TestSetResistanceKnownDelta(t *testing.T) {
	b := rctree.NewBuilder("in")
	a := b.Resistor(rctree.Root, "a", 1)
	b.Capacitor(a, 2)
	bb := b.Resistor(a, "b", 2)
	b.Capacitor(bb, 3)
	b.Output(bb)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	et := New(tr)
	if err := et.SetResistance(a, 5); err != nil { // R1: 1 -> 5
		t.Fatal(err)
	}
	tm, err := et.Times(bb)
	if err != nil {
		t.Fatal(err)
	}
	// TP = 5*2 + 7*3 = 31; TD at b = 5*2 + 7*3 = 31; TR = (25*2+49*3)/7.
	if !relClose(tm.TP, 31, 1e-12) || !relClose(tm.TD, 31, 1e-12) {
		t.Fatalf("TP/TD = %g/%g, want 31/31", tm.TP, tm.TD)
	}
	if want := (25.0*2 + 49*3) / 7; !relClose(tm.TR, want, 1e-12) {
		t.Fatalf("TR = %g, want %g", tm.TR, want)
	}
	if tm.Ree != 7 {
		t.Fatalf("Ree = %g, want 7", tm.Ree)
	}
}

// TestSetCapacitanceKnownDelta: ΔC at an off-path node moves TD by the
// common resistance times ΔC.
func TestSetCapacitanceKnownDelta(t *testing.T) {
	b := rctree.NewBuilder("in")
	stem := b.Resistor(rctree.Root, "stem", 10)
	left := b.Resistor(stem, "left", 5)
	b.Capacitor(left, 1)
	right := b.Resistor(stem, "right", 7)
	b.Capacitor(right, 2)
	b.Output(right)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	et := New(tr)
	before, err := et.Times(right)
	if err != nil {
		t.Fatal(err)
	}
	if err := et.SetCapacitance(left, 4); err != nil { // ΔC = +3 at off-path node
		t.Fatal(err)
	}
	after, err := et.Times(right)
	if err != nil {
		t.Fatal(err)
	}
	// common(left, right) = stem, R = 10: TD += 10*3, TP += 15*3, TR numerator += 100*3.
	if want := before.TD + 30; !relClose(after.TD, want, 1e-12) {
		t.Fatalf("TD = %g, want %g", after.TD, want)
	}
	if want := before.TP + 45; !relClose(after.TP, want, 1e-12) {
		t.Fatalf("TP = %g, want %g", after.TP, want)
	}
	if want := (before.TR*before.Ree + 300) / before.Ree; !relClose(after.TR, want, 1e-12) {
		t.Fatalf("TR = %g, want %g", after.TR, want)
	}
}

// TestScaleDriverMatchesSetResistance: on a single-driver-edge tree the two
// edit paths must agree exactly.
func TestScaleDriverMatchesSetResistance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := randnet.Tree(rng, randnet.Config{Nodes: 40, LineProb: 0.4, CapProb: 0.8, Chain: 1, RMax: 50, CMax: 5})
	out := tr.Outputs()[0]
	driver := tr.Children(rctree.Root)[0]
	_, r0, _ := tr.Edge(driver)

	a, b := New(tr), New(tr)
	if err := a.ScaleDriver(2.5); err != nil {
		t.Fatal(err)
	}
	if err := b.SetResistance(driver, r0*2.5); err != nil {
		t.Fatal(err)
	}
	ta, err := a.Times(out)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.Times(out)
	if err != nil {
		t.Fatal(err)
	}
	timesClose(t, ta, tb, 1e-12, "scale vs set")
}

// TestGrowPrune: growing a tap and pruning it restores the original times.
func TestGrowPrune(t *testing.T) {
	tr := ladder(t, 12)
	out := tr.Outputs()[0]
	et := New(tr)
	orig, err := et.Times(out)
	if err != nil {
		t.Fatal(err)
	}
	mid, _ := et.Lookup("n6")
	tap, err := et.Grow(mid, "tap", rctree.EdgeLine, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := et.SetCapacitance(tap, 3); err != nil {
		t.Fatal(err)
	}
	grown, err := et.Times(out)
	if err != nil {
		t.Fatal(err)
	}
	timesClose(t, grown, fullTimes(t, et, out), 1e-12, "after grow")
	if grown.TD <= orig.TD {
		t.Fatalf("extra load must slow the output: %g <= %g", grown.TD, orig.TD)
	}
	if err := et.Prune(tap); err != nil {
		t.Fatal(err)
	}
	back, err := et.Times(out)
	if err != nil {
		t.Fatal(err)
	}
	timesClose(t, back, orig, 1e-9, "after prune")
	if _, ok := et.Lookup("tap"); ok {
		t.Fatal("pruned name still resolves")
	}
	if _, err := et.Times(tap); err == nil {
		t.Fatal("Times on a pruned node must fail")
	}
	// The freed name is reusable.
	if _, err := et.Grow(mid, "tap", rctree.EdgeResistor, 2, 0); err != nil {
		t.Fatalf("regrow with freed name: %v", err)
	}
}

// TestGraft attaches a random subtree and cross-checks against the full
// analysis of the materialized result.
func TestGraft(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	host := randnet.Tree(rng, randnet.DefaultConfig(25))
	sub := randnet.Tree(rng, randnet.DefaultConfig(10))
	et := New(host)
	attach := host.Outputs()[0]
	// Names may collide between two independently generated trees (both use
	// n1, n2, ...); a collision must be rejected atomically.
	genBefore := et.Gen()
	if _, err := et.Graft(attach, "", rctree.EdgeResistor, 3, 0, sub); err == nil {
		t.Fatal("colliding graft must fail")
	} else if et.Gen() != genBefore {
		t.Fatal("failed graft mutated the overlay")
	}
	// Rename the subtree via a netlist-free rebuild: prefix its node names.
	b := rctree.NewBuilder("g_in")
	ids := map[rctree.NodeID]rctree.NodeID{rctree.Root: rctree.Root}
	sub.Walk(func(id rctree.NodeID) {
		if id == rctree.Root {
			if c := sub.NodeCap(id); c > 0 {
				b.Capacitor(rctree.Root, c)
			}
			return
		}
		kind, r, c := sub.Edge(id)
		var nid rctree.NodeID
		if kind == rctree.EdgeLine {
			nid = b.Line(ids[sub.Parent(id)], "g_"+sub.Name(id), r, c)
		} else {
			nid = b.Resistor(ids[sub.Parent(id)], "g_"+sub.Name(id), r)
		}
		ids[id] = nid
		if c := sub.NodeCap(id); c > 0 {
			b.Capacitor(nid, c)
		}
	})
	renamed, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	graftIDs, err := et.Graft(attach, "", rctree.EdgeLine, 2, 1, renamed)
	if err != nil {
		t.Fatal(err)
	}
	if err := et.AddOutput(graftIDs[len(graftIDs)-1]); err != nil {
		t.Fatal(err)
	}
	for _, e := range et.Outputs() {
		got, err := et.Times(e)
		if err != nil {
			t.Fatal(err)
		}
		timesClose(t, got, fullTimes(t, et, e), 1e-12, "grafted "+et.Name(e))
	}
}

// TestEditSequenceMatchesFullRecompute is the subsystem's acceptance
// property: after arbitrary random edit sequences, incrementally maintained
// times agree with a from-scratch analysis to 1e-9 relative error.
func TestEditSequenceMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 30; trial++ {
		tr := randnet.Tree(rng, randnet.Config{
			Nodes:    5 + rng.Intn(80),
			LineProb: 0.4, CapProb: 0.7,
			Chain: rng.Float64(),
			RMax:  100, CMax: 10,
		})
		et := New(tr)
		// Pin a capacitor at the input so pruning can never drain the tree
		// of all capacitance (the input cap contributes zero to every time).
		if err := et.SetCapacitance(Root, 1); err != nil {
			t.Fatal(err)
		}
		slots := tr.NumNodes()
		alive := func() []NodeID {
			var ids []NodeID
			for i := 0; i < slots; i++ {
				if et.Name(NodeID(i)) != "" {
					ids = append(ids, NodeID(i))
				}
			}
			return ids
		}
		steps := 40 + rng.Intn(120)
		for step := 0; step < steps; step++ {
			ids := alive()
			j := ids[rng.Intn(len(ids))]
			var err error
			switch op := rng.Intn(8); {
			case op == 0: // lumped capacitance
				err = et.SetCapacitance(j, rng.Float64()*10)
			case op == 1 && j != Root: // resistance
				err = et.SetResistance(j, rng.Float64()*100+1e-3)
			case op == 2 && j != Root: // full line probe
				err = et.SetLine(j, rng.Float64()*100+1e-3, rng.Float64()*10)
			case op == 3:
				err = et.ScaleDriver(0.5 + rng.Float64()*1.5)
			case op == 4: // grow a tap
				kind, c := rctree.EdgeResistor, 0.0
				if rng.Intn(2) == 0 {
					kind, c = rctree.EdgeLine, rng.Float64()*10+1e-6
				}
				_, err = et.Grow(j, "", kind, rng.Float64()*100+1e-3, c)
				slots++
			case op == 5 && j != Root && et.NumNodes() > 3: // prune
				err = et.Prune(j)
			case op == 6: // graft a small renamed chain
				b := rctree.NewBuilder(randName(rng, "gin", step, trial))
				prev := rctree.Root
				for k := 0; k < 1+rng.Intn(4); k++ {
					prev = b.Resistor(prev, randName(rng, "g", step*10+k, trial), rng.Float64()*50+1e-3)
					b.Capacitor(prev, rng.Float64()*5)
				}
				b.Capacitor(prev, 1e-6)
				b.Output(prev)
				var sub *rctree.Tree
				sub, err = b.Build()
				if err != nil {
					t.Fatal(err)
				}
				_, err = et.Graft(j, "", rctree.EdgeResistor, rng.Float64()*20+1e-3, 0, sub)
				slots += sub.NumNodes()
			default:
				continue
			}
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
		// Compare every live node (not just designated outputs) against the
		// full recompute of the materialized state.
		mt, mapping, err := et.Materialize()
		if err != nil {
			t.Fatalf("trial %d: materialize: %v", trial, err)
		}
		for _, id := range alive() {
			got, err := et.Times(id)
			if err != nil {
				t.Fatalf("trial %d node %q: %v", trial, et.Name(id), err)
			}
			want, err := mt.CharacteristicTimes(mapping[id])
			if err != nil {
				t.Fatalf("trial %d node %q: full: %v", trial, et.Name(id), err)
			}
			timesClose(t, got, want, 1e-9, "trial end "+et.Name(id))
		}
		// Recompute must not change the answers (only squash drift).
		probe := alive()[rng.Intn(len(alive()))]
		before, _ := et.Times(probe)
		et.Recompute()
		after, err := et.Times(probe)
		if err != nil {
			t.Fatalf("trial %d: after Recompute: %v", trial, err)
		}
		timesClose(t, after, before, 1e-9, "recompute consistency")
	}
}

func randName(rng *rand.Rand, prefix string, a, b int) string {
	return prefix + "_" + string(rune('a'+rng.Intn(26))) + "_" +
		string(rune('a'+rng.Intn(26))) + "_" + itoa(a) + "_" + itoa(b)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestMaterializeRoundTrip: materializing and re-wrapping yields identical
// answers, and the mapping resolves names.
func TestMaterializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := randnet.Tree(rng, randnet.DefaultConfig(30))
	et := New(tr)
	out := tr.Outputs()[len(tr.Outputs())-1]
	if err := et.SetCapacitance(out, 42); err != nil {
		t.Fatal(err)
	}
	mt, mapping, err := et.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.NumNodes(); i++ {
		if mapping[i] < 0 {
			t.Fatalf("live node %d unmapped", i)
		}
		if mt.Name(mapping[i]) != et.Name(NodeID(i)) {
			t.Fatalf("mapping broke name %q", et.Name(NodeID(i)))
		}
	}
	et2 := New(mt)
	a, err := et.Times(out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := et2.Times(mapping[out])
	if err != nil {
		t.Fatal(err)
	}
	timesClose(t, a, b, 1e-12, "round trip")
}

// TestEditErrors covers the rejection paths.
func TestEditErrors(t *testing.T) {
	tr := ladder(t, 4)
	et := New(tr)
	n2, _ := et.Lookup("n2")
	cases := []struct {
		name string
		err  error
	}{
		{"set R on root", et.SetResistance(Root, 1)},
		{"set line on root", et.SetLine(Root, 1, 1)},
		{"negative C", et.SetCapacitance(n2, -1)},
		{"NaN C", et.SetCapacitance(n2, math.NaN())},
		{"zero R", et.SetResistance(n2, 0)},
		{"infinite R", et.SetResistance(n2, math.Inf(1))},
		{"prune root", et.Prune(Root)},
		{"scale by zero", et.ScaleDriver(0)},
		{"out of range", et.SetCapacitance(NodeID(99), 1)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := et.Grow(n2, "n3", rctree.EdgeResistor, 1, 0); err == nil {
		t.Error("duplicate grow name: expected error")
	}
	if _, err := et.Grow(n2, "x", rctree.EdgeResistor, 1, 2); err == nil {
		t.Error("resistor with C: expected error")
	}
	if gen := et.Gen(); gen != 0 {
		t.Errorf("failed edits must not bump the generation, got %d", gen)
	}
	// Output bookkeeping.
	if err := et.AddOutput(n2); err != nil {
		t.Fatal(err)
	}
	if err := et.AddOutput(n2); err == nil {
		t.Error("double AddOutput: expected error")
	}
	if !et.RemoveOutput(n2) || et.RemoveOutput(n2) {
		t.Error("RemoveOutput bookkeeping broken")
	}
}

// TestTransientSpikeCancellation: a huge edit that is immediately reverted
// must not leave catastrophic-cancellation residue in the aggregates — the
// magnitude trigger forces a full recompute, keeping queries within 1e-9.
func TestTransientSpikeCancellation(t *testing.T) {
	tr := ladder(t, 50)
	out := tr.Outputs()[0]
	et := New(tr)
	want, err := et.Times(out)
	if err != nil {
		t.Fatal(err)
	}
	mid, _ := et.Lookup("n25")
	for _, spike := range []float64{1e12, 1e15, 1e18} {
		if err := et.SetCapacitance(mid, spike); err != nil {
			t.Fatal(err)
		}
		if err := et.SetCapacitance(mid, 0.5); err != nil { // nominal ladder cap
			t.Fatal(err)
		}
		got, err := et.Times(out)
		if err != nil {
			t.Fatalf("after %g spike: %v", spike, err)
		}
		timesClose(t, got, want, 1e-9, fmt.Sprintf("after %g spike+revert", spike))
	}
	// Same story for a resistance spike.
	if err := et.SetResistance(mid, 1e15); err != nil {
		t.Fatal(err)
	}
	if err := et.SetResistance(mid, 1); err != nil {
		t.Fatal(err)
	}
	got, err := et.Times(out)
	if err != nil {
		t.Fatal(err)
	}
	timesClose(t, got, want, 1e-9, "after R spike+revert")
}

// TestRebuildFallback drives enough edits to cross the density threshold
// several times and checks the fallback leaves answers intact.
func TestRebuildFallback(t *testing.T) {
	tr := ladder(t, 8)
	out := tr.Outputs()[0]
	et := New(tr)
	n4, _ := et.Lookup("n4")
	want, err := et.Times(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10*et.NumNodes(); i++ {
		// A no-net-change pair of edits per step.
		if err := et.SetCapacitance(n4, 7); err != nil {
			t.Fatal(err)
		}
		if err := et.SetCapacitance(n4, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	got, err := et.Times(out)
	if err != nil {
		t.Fatal(err)
	}
	timesClose(t, got, want, 1e-9, "after threshold rebuilds")
}

// TestCloneIndependence: a clone answers exactly what its source answers at
// the moment of cloning, and edits to either side never show through to the
// other — both compared against full recomputes of their own materialized
// states.
func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		tr := randnet.Tree(rng, randnet.DefaultConfig(5+rng.Intn(40)))
		et := New(tr)
		// Warm the source with a few edits so the clone copies a non-trivial
		// aggregate state, not just the New() baseline.
		for k := 0; k < 3; k++ {
			id := NodeID(1 + rng.Intn(tr.NumNodes()-1))
			if err := et.SetResistance(id, 1+rng.Float64()*50); err != nil {
				t.Fatal(err)
			}
		}
		cl := et.Clone()
		if cl.Gen() != et.Gen() || cl.NumNodes() != et.NumNodes() || cl.Slots() != et.Slots() {
			t.Fatalf("clone metadata diverges: gen %d/%d nodes %d/%d slots %d/%d",
				cl.Gen(), et.Gen(), cl.NumNodes(), et.NumNodes(), cl.Slots(), et.Slots())
		}
		for _, e := range et.Outputs() {
			a, err := et.Times(e)
			if err != nil {
				t.Fatal(err)
			}
			b, err := cl.Times(e)
			if err != nil {
				t.Fatal(err)
			}
			timesClose(t, b, a, 0, "clone at snapshot")
		}
		// Diverge both sides with different edits; each must keep matching a
		// full recompute of its own state.
		id := NodeID(1 + rng.Intn(tr.NumNodes()-1))
		if err := et.SetCapacitance(id, 30); err != nil {
			t.Fatal(err)
		}
		if err := cl.SetResistance(id, 123); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Grow(Root, fmt.Sprintf("cl%d", trial), rctree.EdgeLine, 7, 3); err != nil {
			t.Fatal(err)
		}
		for _, e := range et.Outputs() {
			got, err := et.Times(e)
			if err != nil {
				t.Fatal(err)
			}
			timesClose(t, got, fullTimes(t, et, e), 1e-9, "source after divergence")
		}
		for _, e := range cl.Outputs() {
			got, err := cl.Times(e)
			if err != nil {
				t.Fatal(err)
			}
			timesClose(t, got, fullTimes(t, cl, e), 1e-9, "clone after divergence")
		}
	}
}

// TestSlotsChildren: the topology read surface used by tree scans — Slots
// bounds ID scans even across prunes, and Children mirrors Parent.
func TestSlotsChildren(t *testing.T) {
	b := rctree.NewBuilder("in")
	n1 := b.Resistor(rctree.Root, "n1", 10)
	n2 := b.Resistor(n1, "n2", 20)
	b.Capacitor(n2, 5)
	n3 := b.Resistor(n1, "n3", 30)
	b.Capacitor(n3, 2)
	b.Output(n2)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	et := New(tr)
	if et.Slots() != 4 {
		t.Fatalf("Slots = %d, want 4", et.Slots())
	}
	kids := et.Children(n1)
	if len(kids) != 2 || kids[0] != n2 || kids[1] != n3 {
		t.Fatalf("Children(n1) = %v, want [%d %d]", kids, n2, n3)
	}
	for _, k := range kids {
		if et.Parent(k) != n1 {
			t.Fatalf("Parent(%d) = %d, want %d", k, et.Parent(k), n1)
		}
	}
	if err := et.Prune(n3); err != nil {
		t.Fatal(err)
	}
	if et.Slots() != 4 {
		t.Fatalf("Slots after prune = %d, want 4 (slots persist)", et.Slots())
	}
	if kids := et.Children(n1); len(kids) != 1 || kids[0] != n2 {
		t.Fatalf("Children(n1) after prune = %v, want [%d]", kids, n2)
	}
	if et.Children(n3) != nil {
		t.Fatalf("Children of a pruned node = %v, want nil", et.Children(n3))
	}
	if et.Children(NodeID(99)) != nil {
		t.Fatal("Children out of range should be nil")
	}
}
