package incr_test

import (
	"math/rand"
	"testing"

	"repro/internal/incr"
	"repro/internal/randnet"
	"repro/internal/rctree"
)

// sweepTree is the benchmark workload: a bushy 1000-node tree (random
// attachment keeps depth logarithmic, the regime interconnect trees live
// in), every leaf an output — the deck an optimization loop or interactive
// session probes over and over.
func sweepTree(b *testing.B) *rctree.Tree {
	b.Helper()
	rng := rand.New(rand.NewSource(1009))
	return randnet.Tree(rng, randnet.Config{
		Nodes: 1000, LineProb: 0.3, CapProb: 0.7, Chain: 0, RMax: 100, CMax: 10,
	})
}

type sweepEdit struct {
	node rctree.NodeID
	r    float64
}

func sweepEdits(tree *rctree.Tree, n int) []sweepEdit {
	rng := rand.New(rand.NewSource(2027))
	edits := make([]sweepEdit, n)
	for i := range edits {
		// Only resistor edges accept SetResistance semantics trivially; pick
		// until we land on one (node 0 excluded).
		for {
			id := rctree.NodeID(1 + rng.Intn(tree.NumNodes()-1))
			kind, _, _ := tree.Edge(id)
			if kind == rctree.EdgeResistor {
				edits[i] = sweepEdit{node: id, r: rng.Float64()*100 + 1e-3}
				break
			}
		}
	}
	return edits
}

// rebuildWith is the non-incremental workflow: produce a fresh immutable
// tree with one resistance changed — what opt's bisections and mc's
// perturbation loop do per probe today.
func rebuildWith(t *rctree.Tree, target rctree.NodeID, r float64) *rctree.Tree {
	b := rctree.NewBuilder(t.Name(rctree.Root))
	ids := make([]rctree.NodeID, t.NumNodes())
	if c := t.NodeCap(rctree.Root); c > 0 {
		b.Capacitor(rctree.Root, c)
	}
	for i := 1; i < t.NumNodes(); i++ {
		id := rctree.NodeID(i)
		kind, er, ec := t.Edge(id)
		if id == target {
			er = r
		}
		if kind == rctree.EdgeLine {
			ids[i] = b.Line(ids[t.Parent(id)], t.Name(id), er, ec)
		} else {
			ids[i] = b.Resistor(ids[t.Parent(id)], t.Name(id), er)
		}
		if c := t.NodeCap(id); c > 0 {
			b.Capacitor(ids[i], c)
		}
	}
	for _, o := range t.Outputs() {
		b.Output(ids[o])
	}
	nt, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nt
}

// BenchmarkIncrementalSweep compares the cost of one "change an element,
// re-certify every output" probe on a 1000-node tree:
//
//	full:        rebuild the immutable tree and re-run the O(n)-per-output
//	             analysis (the pre-incr workflow);
//	incremental: one EditTree edit (O(depth)) plus O(depth)-per-output
//	             queries.
//
// The ratio of the two ns/op figures is the headline speedup recorded in
// BENCH_incremental.json (see Makefile bench-trajectory).
func BenchmarkIncrementalSweep(b *testing.B) {
	tree := sweepTree(b)
	outs := tree.Outputs()
	edits := sweepEdits(tree, 4096)
	b.Logf("tree: %d nodes, depth %d, %d outputs", tree.NumNodes(), tree.Depth(), len(outs))

	b.Run("full", func(b *testing.B) {
		var scratch rctree.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := edits[i%len(edits)]
			nt := rebuildWith(tree, e.node, e.r)
			for _, o := range outs {
				if _, err := nt.CharacteristicTimesInto(o, &scratch); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("incremental", func(b *testing.B) {
		et := incr.New(tree)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := edits[i%len(edits)]
			if err := et.SetResistance(e.node, e.r); err != nil {
				b.Fatal(err)
			}
			for _, o := range outs {
				if _, err := et.Times(o); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkIncrementalSingleOutput is the same probe against one output —
// the opt bisection shape (edit + one requery).
func BenchmarkIncrementalSingleOutput(b *testing.B) {
	tree := sweepTree(b)
	out := tree.Outputs()[len(tree.Outputs())-1]
	edits := sweepEdits(tree, 4096)

	b.Run("full", func(b *testing.B) {
		var scratch rctree.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := edits[i%len(edits)]
			nt := rebuildWith(tree, e.node, e.r)
			if _, err := nt.CharacteristicTimesInto(out, &scratch); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("incremental", func(b *testing.B) {
		et := incr.New(tree)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := edits[i%len(edits)]
			if err := et.SetResistance(e.node, e.r); err != nil {
				b.Fatal(err)
			}
			if _, err := et.Times(out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
