// Package incr maintains the characteristic times of an RC tree under local
// edits, turning the O(n)-per-output analysis of rctree into an
// O(depth)-per-probe operation for the workloads that mutate one element at a
// time: the bisection loops of package opt (driver sizing, wire-length rules,
// repeater insertion), Monte Carlo-style what-if probing, and interactive
// editing sessions (cmd/rcserve's session API).
//
// # The math
//
// All three characteristic times are capacitor-weighted sums of path
// resistances (paper eqs. 1, 5, 6):
//
//	TP   = Σk Rkk·Ck
//	TDe  = Σk Rke·Ck
//	TRe  = (Σk Rke²·Ck) / Ree
//
// where Rkk is the input→k path resistance and Rke the resistance of the
// common portion of the input→k and input→e paths. Because each sum is linear
// in every capacitance and piecewise linear in every resistance, a local edit
// shifts the sums by closed-form deltas:
//
//   - a ΔC at node j shifts TDe by R(common(j,e))·ΔC and TP by Rjj·ΔC;
//   - a ΔR on the edge into node q shifts every sum by ΔR times the
//     capacitance aggregates of the subtree below q (each capacitor at or
//     below q sees the edit on its root path; nothing else does).
//
// EditTree therefore maintains two per-node subtree aggregates, updated along
// the root path of each edit (O(depth) per edit):
//
//	S0(v) = Σ_{k ⊆ v} Ck                    subtree capacitance
//	S1(v) = Σ_{k ⊆ v} Ck·(Rkk − P(v))       subtree cap-weighted resistance
//
// with P(v) the prefix (root→parent(v)) resistance. S1(root) is exactly TP.
// Distributed RC lines enter both aggregates in closed form: a line with
// resistance R and capacitance c contributes c to S0 and c·R/2 to its own
// S1 term, matching the integrals rctree evaluates.
//
// A query for output e then needs only one walk down the input→e path
// (O(depth), independent of tree size), using the telescoping identity
// Rke² = Σ_g R_g·(2·P(g) + R_g) over the edges g of the common path:
//
//	TDe      = Σ_{v∈path(e)} R_v·(S0(v) − c_v/2)
//	TRe·Ree  = Σ_{v∈path(e)} (S0(v) − c_v)·R_v·(2·P(v) + R_v)
//	                        + c_v·(P(v)·R_v + R_v²/3)
//	Ree      = Σ_{v∈path(e)} R_v
//
// Results are memoized per output under a generation counter, so repeated
// queries between edits are O(1).
//
// # Fallback and drift
//
// Incremental aggregate updates accumulate floating-point rounding. As a
// fallback, once the number of edits since the last full pass exceeds a
// density threshold (the current node count), the aggregates are recomputed
// from scratch in O(n) — amortized O(1) per edit — so long edit sequences
// stay within 1e-9 relative error of a full re-analysis (property-tested
// against rctree.CharacteristicTimes). Recompute forces that pass manually.
//
// # Concurrency
//
// An EditTree is a single-writer structure: methods must not be called
// concurrently. Wrap it in a mutex (as cmd/rcserve's sessions do) to share
// one across goroutines. Materialize snapshots the current state back into an
// immutable rctree.Tree for consumers that need one.
package incr
