package incr

import (
	"fmt"
	"math"

	"repro/internal/rctree"
)

// NodeID aliases rctree.NodeID; EditTree preserves the IDs of the tree it
// was built from, and assigns fresh ascending IDs to grown/grafted nodes.
type NodeID = rctree.NodeID

// Root is the input node, as in rctree.
const Root = rctree.Root

// enode is the mutable per-node record of the overlay.
type enode struct {
	name     string
	parent   NodeID
	kind     rctree.EdgeKind
	edgeR    float64 // resistance of the element to the parent
	edgeC    float64 // distributed capacitance of the element (lines only)
	nodeC    float64 // lumped capacitance at the node
	children []NodeID
	dead     bool // pruned; the slot stays so NodeIDs remain stable
}

// cachedTimes memoizes one output's query under a generation stamp.
type cachedTimes struct {
	gen uint64
	tm  rctree.Times
}

// EditTree is a mutable overlay over an RC tree that answers characteristic-
// time queries in O(depth) and absorbs local edits in O(depth) by maintaining
// per-node subtree aggregates (see the package documentation for the math).
// The zero value is not usable; obtain one from New.
//
// EditTree is not safe for concurrent use.
type EditTree struct {
	nodes   []enode
	byName  map[string]NodeID
	outputs []NodeID
	s0      []float64 // subtree capacitance (incl. own line C)
	s1      []float64 // subtree Σ C·(Rkk − P(v)); s1[Root] == TP
	gen     uint64    // bumped on every mutation; stamps the query cache
	alive   int
	edits   int     // edits since the last full aggregate pass
	maxMag  float64 // largest aggregate delta magnitude since that pass
	cache   map[NodeID]cachedTimes
	path    []NodeID // scratch for root-path walks
}

// New builds an overlay on t. The tree is copied (t stays immutable and may
// keep serving other readers); node IDs, names and designated outputs carry
// over unchanged.
func New(t *rctree.Tree) *EditTree {
	n := t.NumNodes()
	et := &EditTree{
		nodes:   make([]enode, n),
		byName:  make(map[string]NodeID, n),
		outputs: append([]NodeID(nil), t.Outputs()...),
		s0:      make([]float64, n),
		s1:      make([]float64, n),
		alive:   n,
		cache:   make(map[NodeID]cachedTimes),
	}
	for i := 0; i < n; i++ {
		id := NodeID(i)
		kind, r, c := t.Edge(id)
		et.nodes[i] = enode{
			name:     t.Name(id),
			parent:   t.Parent(id),
			kind:     kind,
			edgeR:    r,
			edgeC:    c,
			nodeC:    t.NodeCap(id),
			children: append([]NodeID(nil), t.Children(id)...),
		}
		et.byName[t.Name(id)] = id
	}
	et.recomputeAggregates()
	return et
}

// Clone returns an independent deep copy of the overlay: same node IDs,
// names, designated outputs and maintained aggregates, but no shared mutable
// storage — edits to either side never show through to the other. The query
// memo does not carry over (the clone re-derives it on demand). O(n).
//
// Clone is the building block for what-if trials: snapshot the tree, probe an
// edit on the copy, and discard it — the original keeps serving readers. A
// clone and its source may be read concurrently, but each side's mutations
// (including Times, which fills a memo) must stay single-goroutine, as usual.
func (et *EditTree) Clone() *EditTree {
	c := &EditTree{
		nodes:   append([]enode(nil), et.nodes...),
		byName:  make(map[string]NodeID, len(et.byName)),
		outputs: append([]NodeID(nil), et.outputs...),
		s0:      append([]float64(nil), et.s0...),
		s1:      append([]float64(nil), et.s1...),
		gen:     et.gen,
		alive:   et.alive,
		edits:   et.edits,
		maxMag:  et.maxMag,
		cache:   make(map[NodeID]cachedTimes),
	}
	for i := range c.nodes {
		c.nodes[i].children = append([]NodeID(nil), et.nodes[i].children...)
	}
	for name, id := range et.byName {
		c.byName[name] = id
	}
	return c
}

// recomputeAggregates rebuilds s0 and s1 from the element values in one
// bottom-up pass — the full-recompute fallback. Node storage is topological
// (parents precede children, for grafted nodes too), so a reverse index walk
// visits children first.
func (et *EditTree) recomputeAggregates() {
	for i := range et.s0 {
		et.s0[i], et.s1[i] = 0, 0
	}
	for i := len(et.nodes) - 1; i >= 1; i-- {
		n := &et.nodes[i]
		if n.dead {
			continue
		}
		et.s0[i] += n.nodeC + n.edgeC
		et.s1[i] += n.edgeR * (et.s0[i] - n.edgeC/2)
		et.s0[n.parent] += et.s0[i]
		et.s1[n.parent] += et.s1[i]
	}
	et.s0[Root] += et.nodes[Root].nodeC
	et.edits = 0
	et.maxMag = 0
}

// afterEdit invalidates query caches and decides when to pay the O(n) full
// pass that squashes accumulated floating-point drift. Two triggers:
//
//   - density: the edit count crosses the live node count (one full tree's
//     worth of O(depth) updates), bounding slow accumulation;
//   - cancellation: the largest delta magnitude applied since the last pass
//     dwarfs the current aggregate scale — a transient huge edit that was
//     reverted leaves absolute error ~maxMag·2⁻⁵², which must stay below
//     1e-9 of the surviving scale for queries to remain trustworthy.
//
// mag is the caller's bound on the absolute s0/s1 change of this edit.
func (et *EditTree) afterEdit(mag float64) {
	et.gen++
	et.edits++
	if mag > et.maxMag {
		et.maxMag = mag
	}
	scale := math.Abs(et.s1[Root]) + math.Abs(et.s0[Root]) + 1
	if et.edits >= et.alive || et.maxMag > 1e6*scale {
		et.recomputeAggregates()
	}
}

// pathFromRoot returns the node sequence input→j in scratch storage. The
// slice is invalidated by the next call.
func (et *EditTree) pathFromRoot(j NodeID) []NodeID {
	p := et.path[:0]
	for x := j; ; x = et.nodes[x].parent {
		p = append(p, x)
		if x == Root {
			break
		}
	}
	for i, k := 0, len(p)-1; i < k; i, k = i+1, k-1 {
		p[i], p[k] = p[k], p[i]
	}
	et.path = p
	return p
}

// checkNode validates that id names a live node.
func (et *EditTree) checkNode(id NodeID) error {
	if int(id) < 0 || int(id) >= len(et.nodes) {
		return fmt.Errorf("incr: node %d out of range", id)
	}
	if et.nodes[id].dead {
		return fmt.Errorf("incr: node %q was pruned", et.nodes[id].name)
	}
	return nil
}

func checkValue(what string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("incr: %s must be finite, got %g", what, v)
	}
	return nil
}

// SetCapacitance sets the lumped capacitance at node j to c (farads, or the
// tree's units). O(depth).
func (et *EditTree) SetCapacitance(j NodeID, c float64) error {
	if err := et.checkNode(j); err != nil {
		return err
	}
	if err := checkValue("capacitance", c); err != nil {
		return err
	}
	if c < 0 {
		return fmt.Errorf("incr: capacitance must be >= 0, got %g", c)
	}
	delta := c - et.nodes[j].nodeC
	if delta == 0 {
		return nil
	}
	et.nodes[j].nodeC = c
	path := et.pathFromRoot(j)
	var rkkJ float64
	for _, a := range path {
		rkkJ += et.nodes[a].edgeR
	}
	var p float64 // prefix resistance above the current path node
	for _, a := range path {
		et.s0[a] += delta
		et.s1[a] += delta * (rkkJ - p)
		p += et.nodes[a].edgeR
	}
	et.afterEdit(math.Abs(delta) * (1 + rkkJ))
	return nil
}

// AddCapacitance adds dc to the lumped capacitance at node j (dc may be
// negative as long as the result stays nonnegative). O(depth).
func (et *EditTree) AddCapacitance(j NodeID, dc float64) error {
	if err := et.checkNode(j); err != nil {
		return err
	}
	return et.SetCapacitance(j, et.nodes[j].nodeC+dc)
}

// SetResistance sets the resistance of the element into node j (resistor or
// line) to r > 0. O(depth).
func (et *EditTree) SetResistance(j NodeID, r float64) error {
	if err := et.checkNode(j); err != nil {
		return err
	}
	if j == Root {
		return fmt.Errorf("incr: the input node has no parent element")
	}
	if err := checkValue("resistance", r); err != nil {
		return err
	}
	if r <= 0 {
		return fmt.Errorf("incr: resistance must be > 0, got %g", r)
	}
	n := &et.nodes[j]
	delta := r - n.edgeR
	if delta == 0 {
		return nil
	}
	// Every capacitor at or below j sees the full ΔR on its root path; the
	// edge's own distributed capacitance sees half of it.
	eff := et.s0[j] - n.edgeC/2
	n.edgeR = r
	for _, a := range et.pathFromRoot(j) {
		et.s1[a] += delta * eff
	}
	et.afterEdit(math.Abs(delta * eff))
	return nil
}

// SetLine sets both values of the element into node j at once — the natural
// probe for wire-length sweeps, where R and C scale together. r must be
// positive; c nonnegative (c == 0 degrades the element to a lumped
// resistor, c > 0 promotes a resistor to a line). O(depth).
func (et *EditTree) SetLine(j NodeID, r, c float64) error {
	if err := et.checkNode(j); err != nil {
		return err
	}
	if j == Root {
		return fmt.Errorf("incr: the input node has no parent element")
	}
	if err := checkValue("resistance", r); err != nil {
		return err
	}
	if err := checkValue("capacitance", c); err != nil {
		return err
	}
	if r <= 0 || c < 0 {
		return fmt.Errorf("incr: line needs R > 0 and C >= 0, got R=%g C=%g", r, c)
	}
	n := &et.nodes[j]
	deltaR := r - n.edgeR
	deltaC := c - n.edgeC
	if deltaR == 0 && deltaC == 0 {
		return nil
	}
	// Resistance step against the old line capacitance, then the capacitance
	// step against the new resistance; applied along one path walk.
	effR := et.s0[j] - n.edgeC/2
	n.edgeR = r
	n.edgeC = c
	if c > 0 {
		n.kind = rctree.EdgeLine
	} else {
		n.kind = rctree.EdgeResistor
	}
	path := et.pathFromRoot(j)
	var rkkJ float64
	for _, a := range path {
		rkkJ += et.nodes[a].edgeR
	}
	pj := rkkJ - r // prefix resistance above the edited edge
	var p float64
	for _, a := range path {
		et.s0[a] += deltaC
		et.s1[a] += deltaR*effR + deltaC*(pj+r/2-p)
		p += et.nodes[a].edgeR
	}
	et.afterEdit(math.Abs(deltaR*effR) + math.Abs(deltaC)*(1+pj+r))
	return nil
}

// ScaleDriver multiplies the resistance of every element leaving the input
// by factor > 0 — the paper's driver-sizing knob, since the driver's
// effective resistance is common to every root path. O(#driver edges).
func (et *EditTree) ScaleDriver(factor float64) error {
	if err := checkValue("factor", factor); err != nil {
		return err
	}
	if factor <= 0 {
		return fmt.Errorf("incr: driver scale factor must be > 0, got %g", factor)
	}
	if factor == 1 {
		return nil
	}
	var mag float64
	for _, v := range et.nodes[Root].children {
		n := &et.nodes[v]
		if n.dead {
			continue
		}
		delta := n.edgeR * (factor - 1)
		eff := et.s0[v] - n.edgeC/2
		n.edgeR *= factor
		// Path root→v is just these two nodes.
		et.s1[Root] += delta * eff
		et.s1[v] += delta * eff
		mag += math.Abs(delta * eff)
	}
	et.afterEdit(mag)
	return nil
}

// Grow adds a leaf under parent: a lumped resistor (kind EdgeResistor,
// c == 0) or a distributed line (kind EdgeLine, c > 0), with r > 0 in both
// cases. An empty name is assigned automatically. O(depth).
func (et *EditTree) Grow(parent NodeID, name string, kind rctree.EdgeKind, r, c float64) (NodeID, error) {
	if err := et.checkNode(parent); err != nil {
		return 0, err
	}
	if err := checkValue("resistance", r); err != nil {
		return 0, err
	}
	if err := checkValue("capacitance", c); err != nil {
		return 0, err
	}
	switch kind {
	case rctree.EdgeResistor:
		if r <= 0 || c != 0 {
			return 0, fmt.Errorf("incr: resistor needs R > 0 and C == 0, got R=%g C=%g", r, c)
		}
	case rctree.EdgeLine:
		if r <= 0 || c <= 0 {
			return 0, fmt.Errorf("incr: line needs R > 0 and C > 0, got R=%g C=%g", r, c)
		}
	default:
		return 0, fmt.Errorf("incr: cannot grow a %v edge", kind)
	}
	if name == "" {
		name = fmt.Sprintf("n%d", len(et.nodes))
	}
	if _, dup := et.byName[name]; dup {
		return 0, fmt.Errorf("incr: duplicate node name %q", name)
	}
	id := NodeID(len(et.nodes))
	et.nodes = append(et.nodes, enode{name: name, parent: parent, kind: kind, edgeR: r, edgeC: c})
	et.nodes[parent].children = append(et.nodes[parent].children, id)
	et.byName[name] = id
	et.s0 = append(et.s0, c)
	et.s1 = append(et.s1, r*c/2)
	et.alive++
	var mag float64
	if c != 0 {
		path := et.pathFromRoot(parent)
		var rkkP float64
		for _, a := range path {
			rkkP += et.nodes[a].edgeR
		}
		var p float64
		for _, a := range path {
			et.s0[a] += c
			et.s1[a] += c * (rkkP + r/2 - p)
			p += et.nodes[a].edgeR
		}
		mag = c * (1 + rkkP + r)
	}
	et.afterEdit(mag)
	return id, nil
}

// Graft attaches a whole tree under parent: sub's input becomes a new node
// connected by the given element (validated as in Grow), and sub's remaining
// nodes follow with their names, elements and capacitors intact. name
// defaults to sub's input name. Every sub node name must be free in the
// overlay. sub's designated outputs are NOT adopted — call AddOutput with
// the returned IDs to tap the grafted copy. Returns ids, where ids[k] is the
// overlay NodeID of sub's node k. O(len(sub) + depth).
func (et *EditTree) Graft(parent NodeID, name string, kind rctree.EdgeKind, r, c float64, sub *rctree.Tree) ([]NodeID, error) {
	if err := et.checkNode(parent); err != nil {
		return nil, err
	}
	if sub == nil {
		return nil, fmt.Errorf("incr: nil subtree")
	}
	if err := checkValue("resistance", r); err != nil {
		return nil, err
	}
	if err := checkValue("capacitance", c); err != nil {
		return nil, err
	}
	switch kind {
	case rctree.EdgeResistor:
		if r <= 0 || c != 0 {
			return nil, fmt.Errorf("incr: resistor needs R > 0 and C == 0, got R=%g C=%g", r, c)
		}
	case rctree.EdgeLine:
		if r <= 0 || c <= 0 {
			return nil, fmt.Errorf("incr: line needs R > 0 and C > 0, got R=%g C=%g", r, c)
		}
	default:
		return nil, fmt.Errorf("incr: cannot graft over a %v edge", kind)
	}
	if name == "" {
		name = sub.Name(rctree.Root)
	}
	// Validate all names before mutating anything.
	m := sub.NumNodes()
	names := make([]string, m)
	names[0] = name
	for k := 1; k < m; k++ {
		names[k] = sub.Name(NodeID(k))
	}
	for k, nm := range names {
		if nm == "" {
			names[k] = fmt.Sprintf("n%d", len(et.nodes)+k)
			nm = names[k]
		}
		if _, dup := et.byName[nm]; dup {
			return nil, fmt.Errorf("incr: graft name %q collides with an existing node", nm)
		}
	}
	seen := make(map[string]bool, m)
	for _, nm := range names {
		if seen[nm] {
			return nil, fmt.Errorf("incr: graft contains duplicate name %q", nm)
		}
		seen[nm] = true
	}
	for k := 1; k < m; k++ {
		if ekind, er, _ := sub.Edge(NodeID(k)); ekind == rctree.EdgeResistor && er <= 0 {
			return nil, fmt.Errorf("incr: graft resistor to %q must be positive", names[k])
		}
	}

	base := len(et.nodes)
	ids := make([]NodeID, m)
	ids[0] = NodeID(base)
	et.nodes = append(et.nodes, enode{
		name: names[0], parent: parent, kind: kind, edgeR: r, edgeC: c,
		nodeC: sub.NodeCap(rctree.Root),
	})
	et.nodes[parent].children = append(et.nodes[parent].children, ids[0])
	et.byName[names[0]] = ids[0]
	for k := 1; k < m; k++ {
		ekind, er, ec := sub.Edge(NodeID(k))
		id := NodeID(len(et.nodes))
		ids[k] = id
		p := ids[sub.Parent(NodeID(k))]
		et.nodes = append(et.nodes, enode{
			name: names[k], parent: p, kind: ekind, edgeR: er, edgeC: ec,
			nodeC: sub.NodeCap(NodeID(k)),
		})
		et.nodes[p].children = append(et.nodes[p].children, id)
		et.byName[names[k]] = id
	}
	et.alive += m
	et.s0 = append(et.s0, make([]float64, m)...)
	et.s1 = append(et.s1, make([]float64, m)...)
	// Aggregates of the grafted range, bottom-up (IDs ascend topologically).
	for i := len(et.nodes) - 1; i >= base; i-- {
		n := &et.nodes[i]
		et.s0[i] += n.nodeC + n.edgeC
		et.s1[i] += n.edgeR * (et.s0[i] - n.edgeC/2)
		if i > base {
			et.s0[n.parent] += et.s0[i]
			et.s1[n.parent] += et.s1[i]
		}
	}
	// One propagation to the pre-existing ancestors.
	var mag float64
	if et.s0[base] != 0 {
		path := et.pathFromRoot(parent)
		var rkkP float64
		for _, a := range path {
			rkkP += et.nodes[a].edgeR
		}
		var p float64
		for _, a := range path {
			et.s0[a] += et.s0[base]
			et.s1[a] += et.s1[base] + et.s0[base]*(rkkP-p)
			p += et.nodes[a].edgeR
		}
		mag = et.s1[base] + et.s0[base]*(1+rkkP)
	}
	et.afterEdit(mag)
	return ids, nil
}

// Prune detaches the subtree rooted at q (q itself included). The NodeIDs of
// pruned nodes become invalid, their names free, and any designated outputs
// among them are dropped. O(len(subtree) + depth).
func (et *EditTree) Prune(q NodeID) error {
	if err := et.checkNode(q); err != nil {
		return err
	}
	if q == Root {
		return fmt.Errorf("incr: cannot prune the input node")
	}
	// Subtract the subtree's aggregates from the surviving ancestors.
	s0q, s1q := et.s0[q], et.s1[q]
	parent := et.nodes[q].parent
	path := et.pathFromRoot(parent)
	var pq float64 // prefix resistance above q == rkk(parent)
	for _, a := range path {
		pq += et.nodes[a].edgeR
	}
	var p float64
	for _, a := range path {
		et.s0[a] -= s0q
		et.s1[a] -= s1q + s0q*(pq-p)
		p += et.nodes[a].edgeR
	}
	// Unlink from the parent and mark the subtree dead.
	kids := et.nodes[parent].children
	for i, v := range kids {
		if v == q {
			et.nodes[parent].children = append(kids[:i], kids[i+1:]...)
			break
		}
	}
	deadSet := make(map[NodeID]bool)
	stack := []NodeID{q}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &et.nodes[v]
		n.dead = true
		deadSet[v] = true
		delete(et.byName, n.name)
		et.s0[v], et.s1[v] = 0, 0
		et.alive--
		stack = append(stack, n.children...)
	}
	kept := et.outputs[:0]
	for _, o := range et.outputs {
		if !deadSet[o] {
			kept = append(kept, o)
		}
	}
	et.outputs = kept
	et.afterEdit(s1q + s0q*(1+pq))
	return nil
}

// AddOutput designates node id as an output.
func (et *EditTree) AddOutput(id NodeID) error {
	if err := et.checkNode(id); err != nil {
		return err
	}
	for _, o := range et.outputs {
		if o == id {
			return fmt.Errorf("incr: node %q is already an output", et.nodes[id].name)
		}
	}
	et.outputs = append(et.outputs, id)
	return nil
}

// RemoveOutput undesignates node id; it reports whether id was an output.
func (et *EditTree) RemoveOutput(id NodeID) bool {
	for i, o := range et.outputs {
		if o == id {
			et.outputs = append(et.outputs[:i], et.outputs[i+1:]...)
			return true
		}
	}
	return false
}

// Times computes the characteristic times of output e from the maintained
// aggregates in O(depth(e)); repeated queries between edits are served from
// a memo. The result matches rctree.CharacteristicTimes on the materialized
// tree to floating-point accuracy.
func (et *EditTree) Times(e NodeID) (rctree.Times, error) {
	if err := et.checkNode(e); err != nil {
		return rctree.Times{}, err
	}
	if ct, ok := et.cache[e]; ok && ct.gen == et.gen {
		return ct.tm, nil
	}
	var td, trNum, p float64
	path := et.pathFromRoot(e)
	for _, a := range path[1:] {
		n := &et.nodes[a]
		r, c := n.edgeR, n.edgeC
		csub := et.s0[a]
		td += r * (csub - c/2)
		trNum += (csub-c)*r*(2*p+r) + c*(p*r+r*r/3)
		p += r
	}
	tm := rctree.Times{TP: et.s1[Root], TD: td, Ree: p}
	if p > 0 {
		tm.TR = trNum / p
	}
	// Squash the tiny negative dust incremental subtraction can leave when a
	// sum cancels to zero; anything larger is a real error Validate reports.
	scale := math.Max(math.Abs(tm.TP), 1)
	for _, f := range []*float64{&tm.TP, &tm.TD, &tm.TR} {
		if *f < 0 && *f > -1e-12*scale {
			*f = 0
		}
	}
	if err := tm.Validate(); err != nil {
		return rctree.Times{}, err
	}
	et.cache[e] = cachedTimes{gen: et.gen, tm: tm}
	return tm, nil
}

// AllTimes computes Times for every designated output, keyed by node ID.
// O(outputs · depth), against the full analysis's O(outputs · n).
func (et *EditTree) AllTimes() (map[NodeID]rctree.Times, error) {
	out := make(map[NodeID]rctree.Times, len(et.outputs))
	for _, e := range et.outputs {
		tm, err := et.Times(e)
		if err != nil {
			return nil, fmt.Errorf("incr: output %q: %w", et.nodes[e].name, err)
		}
		out[e] = tm
	}
	return out, nil
}

// Recompute forces the full O(n) aggregate pass, discarding any accumulated
// floating-point drift. Queries after Recompute are exact to one full
// analysis of the current state.
func (et *EditTree) Recompute() {
	et.recomputeAggregates()
	et.gen++ // drop memos computed from the drifted aggregates
}

// Materialize compacts the current state into an immutable rctree.Tree.
// mapping[old] is the new NodeID of live node old, or -1 for pruned slots.
// The new tree carries the overlay's designated outputs; if none are
// designated, rctree's Build promotes every leaf, as usual.
func (et *EditTree) Materialize() (*rctree.Tree, []NodeID, error) {
	mapping := make([]NodeID, len(et.nodes))
	for i := range mapping {
		mapping[i] = -1
	}
	b := rctree.NewBuilder(et.nodes[Root].name)
	mapping[Root] = rctree.Root
	if c := et.nodes[Root].nodeC; c > 0 {
		b.Capacitor(rctree.Root, c)
	}
	for i := 1; i < len(et.nodes); i++ {
		n := &et.nodes[i]
		if n.dead {
			continue
		}
		np := mapping[n.parent]
		var id NodeID
		switch n.kind {
		case rctree.EdgeResistor:
			id = b.Resistor(np, n.name, n.edgeR)
		case rctree.EdgeLine:
			id = b.Line(np, n.name, n.edgeR, n.edgeC)
		default:
			return nil, nil, fmt.Errorf("incr: node %q has no parent element", n.name)
		}
		mapping[i] = id
		if n.nodeC > 0 {
			b.Capacitor(id, n.nodeC)
		}
	}
	for _, o := range et.outputs {
		b.Output(mapping[o])
	}
	t, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return t, mapping, nil
}

// Gen returns the mutation generation; it increments on every successful
// edit, so equal generations imply identical timing state.
func (et *EditTree) Gen() uint64 { return et.gen }

// NumNodes reports the number of live nodes, including the input.
func (et *EditTree) NumNodes() int { return et.alive }

// Slots reports the total number of NodeID slots ever allocated, dead ones
// included — the exclusive upper bound for scanning IDs with Name/checkNode,
// since pruned slots persist and grown nodes always take fresh ascending IDs.
func (et *EditTree) Slots() int { return len(et.nodes) }

// Children returns a copy of the live children of node id (empty for pruned
// or out-of-range IDs) — with Parent, the full topology surface a read-only
// consumer like the closure engine's stub scan needs.
func (et *EditTree) Children(id NodeID) []NodeID {
	if et.checkNode(id) != nil {
		return nil
	}
	return append([]NodeID(nil), et.nodes[id].children...)
}

// Outputs returns a copy of the designated output IDs, in designation order.
func (et *EditTree) Outputs() []NodeID { return append([]NodeID(nil), et.outputs...) }

// Lookup finds a live node by name.
func (et *EditTree) Lookup(name string) (NodeID, bool) {
	id, ok := et.byName[name]
	return id, ok
}

// Name returns the name of live node id ("" for pruned or out-of-range IDs).
func (et *EditTree) Name(id NodeID) string {
	if et.checkNode(id) != nil {
		return ""
	}
	return et.nodes[id].name
}

// Parent returns the parent of id, or -1 for the input.
func (et *EditTree) Parent(id NodeID) NodeID { return et.nodes[id].parent }

// Edge describes the element connecting id to its parent.
func (et *EditTree) Edge(id NodeID) (kind rctree.EdgeKind, r, c float64) {
	n := &et.nodes[id]
	return n.kind, n.edgeR, n.edgeC
}

// NodeCap returns the lumped capacitance at node id.
func (et *EditTree) NodeCap(id NodeID) float64 { return et.nodes[id].nodeC }

// TotalCap returns the total live capacitance, lumped and distributed.
func (et *EditTree) TotalCap() float64 { return et.s0[Root] }

// SubtreeCap returns the total capacitance (lumped and distributed) of the
// subtree rooted at id, read off the maintained aggregates in O(1) — the
// natural pre-check before a Prune ("how much load would this remove?").
// Pruned nodes report 0.
func (et *EditTree) SubtreeCap(id NodeID) float64 {
	if et.checkNode(id) != nil {
		return 0
	}
	return et.s0[id]
}
