// Package mcd lifts Monte Carlo variation analysis from single RC trees
// (internal/mc) to whole designs: process-corner sweeps with per-net Gaussian
// derating, evaluated as vectorized passes over the flat timing arena.
//
// # Model
//
// A Corner is a global (R scale, C scale) pair — the classic slow/typ/fast
// process points. On top of each corner, Variation draws one independent
// Gaussian factor pair per net per sample (sheet-resistance and oxide spread
// are spatially correlated within a net, independent across nets at this
// granularity). The same per-net factor draws are reused across all corners
// of one sample — the corners model the same die shifted globally, so their
// distributions are comparable point by point.
//
// # Execution
//
// Where internal/mc rebuilds a pointer tree per sample, mcd mounts a
// timing.VarArena over the design's flat arena: one sample is one in-place
// rescale of three float64 columns plus one levelized re-propagation, with
// zero tree construction. Workers each own a VarArena clone and write
// disjoint sample columns of the slack matrix, so results are bit-identical
// for a given seed regardless of worker count — the determinism test pins
// this.
//
// # Results
//
// Per corner: nominal WNS/TNS (no derating), full WNS/TNS distributions,
// per-endpoint arrival and slack distributions (mean/std and P50/P95/P99 via
// the shared internal/stats convention), and each endpoint's criticality —
// the fraction of samples in which it is the worst-slack endpoint. Gaussian
// factors are clipped at 0.01 to stay positive; Report.Clipped counts the
// clipped draws, since clipping truncates the low tail and biases results
// (see internal/mc's Result.Clipped for the same contract).
package mcd

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/trace"
)

// Corner is one global process point: every resistance in the design scales
// by RScale, every capacitance by CScale.
type Corner struct {
	Name   string  `json:"name"`
	RScale float64 `json:"rScale"`
	CScale float64 `json:"cScale"`
}

// DefaultCorners is the classic three-point sweep: slow (+15% R and C),
// typical, fast (−15%).
func DefaultCorners() []Corner {
	return []Corner{
		{Name: "slow", RScale: 1.15, CScale: 1.15},
		{Name: "typ", RScale: 1, CScale: 1},
		{Name: "fast", RScale: 0.85, CScale: 0.85},
	}
}

// Variation is the per-net Gaussian derating applied on top of each corner:
// independent relative 1-sigma spreads of each net's resistances and
// capacitances. Zero sigmas disable the corresponding draws entirely (and
// consume no randomness), leaving a pure corner sweep.
type Variation struct {
	RSigma float64 `json:"rSigma"`
	CSigma float64 `json:"cSigma"`
}

// Options configures a design-level variation analysis.
type Options struct {
	// Corners to sweep; nil means DefaultCorners().
	Corners []Corner
	// Variation is the per-net Gaussian derating (zero value: none).
	Variation Variation
	// Samples per corner; 0 means 256.
	Samples int
	// Seed feeds the factor draws; the same seed reproduces the same report
	// exactly, at any worker count.
	Seed int64
	// Threshold is the receiving gates' switching threshold (0 means 0.5).
	Threshold float64
	// Required is the default required arrival time for endpoints without an
	// explicit .require card; <= 0 leaves them unconstrained.
	Required float64
	// Workers caps sweep parallelism; 0 means GOMAXPROCS.
	Workers int
	// Sequential forces the whole sweep onto the caller's goroutine.
	Sequential bool
	// Obs receives per-corner sweep spans; nil disables telemetry.
	Obs *obs.Registry
}

// Dist summarizes one sampled scalar with moments and the shared quantile
// convention (internal/stats: R-7 interpolation).
type Dist struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// distOf summarizes vals (not required sorted; a sorted copy is made).
func distOf(vals []float64) Dist {
	var w stats.Welford
	for _, v := range vals {
		w.Add(v)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return Dist{
		Mean: w.Mean(), Std: w.Std(), Min: w.Min(), Max: w.Max(),
		P50: stats.Quantile(sorted, 0.50),
		P95: stats.Quantile(sorted, 0.95),
		P99: stats.Quantile(sorted, 0.99),
	}
}

// EndpointDist is one endpoint's behavior at one corner under variation.
type EndpointDist struct {
	Net    string
	Output string
	// Required is the endpoint's required arrival time, +Inf when
	// unconstrained.
	Required float64
	// NominalArrival and NominalSlack are the corner's values with no
	// derating (per-net factors all 1). NominalSlack is +Inf when
	// unconstrained.
	NominalArrival float64
	NominalSlack   float64
	// Arrival is the distribution of the latest arrival; Slack is the
	// distribution of the slack, nil for unconstrained endpoints.
	Arrival Dist
	Slack   *Dist
	// Criticality is the fraction of samples in which this endpoint had the
	// worst slack of the design (0 for unconstrained endpoints).
	Criticality float64
}

// CornerResult is the sweep of one corner.
type CornerResult struct {
	Corner Corner
	// NominalWNS/NominalTNS are the corner's WNS and TNS with no derating;
	// NominalWNS is +Inf when no endpoint is constrained.
	NominalWNS float64
	NominalTNS float64
	// WNS is the distribution of per-sample worst negative slack, nil when no
	// endpoint is constrained. TNS is the distribution of per-sample total
	// negative slack.
	WNS *Dist
	TNS Dist
	// Endpoints are ordered by ascending nominal slack (worst first);
	// unconstrained endpoints follow, by descending nominal arrival.
	Endpoints []EndpointDist
}

// Report is the full multi-corner variation analysis of one design.
type Report struct {
	Design    string
	Threshold float64
	Samples   int
	Seed      int64
	Variation Variation
	// Clipped counts Gaussian factor draws clipped at the 0.01 positivity
	// floor across all samples (shared by every corner); nonzero means the
	// distributions carry upward truncation bias.
	Clipped int
	Corners []CornerResult
	// WorstCorner names the corner with the smallest nominal WNS ("" when no
	// endpoint is constrained).
	WorstCorner string
}

// resolve applies Options defaults and validates.
func (opt Options) resolve() (Options, error) {
	if opt.Samples == 0 {
		opt.Samples = 256
	}
	if opt.Samples < 1 {
		return opt, fmt.Errorf("mcd: samples must be >= 1, got %d", opt.Samples)
	}
	if opt.Variation.RSigma < 0 || opt.Variation.CSigma < 0 {
		return opt, fmt.Errorf("mcd: negative sigma in %+v", opt.Variation)
	}
	if opt.Corners == nil {
		opt.Corners = DefaultCorners()
	}
	if len(opt.Corners) == 0 {
		return opt, fmt.Errorf("mcd: empty corner list")
	}
	for _, c := range opt.Corners {
		if c.RScale <= 0 || c.CScale <= 0 {
			return opt, fmt.Errorf("mcd: corner %q has non-positive scale", c.Name)
		}
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Sequential {
		opt.Workers = 1
	}
	return opt, nil
}

// drawFactors draws the per-net factor matrices for every sample: one R and
// one C factor per net per sample, clipped at 0.01. A zero sigma returns a
// nil matrix for that dimension and consumes no draws. Draw order is
// sample-major, then net, R before C — the property tests reproduce it.
func drawFactors(nets, samples int, v Variation, seed int64) (rF, cF [][]float64, clipped int) {
	rng := rand.New(rand.NewSource(seed))
	draw := func(sigma float64) float64 {
		f := 1 + sigma*rng.NormFloat64()
		if f < 0.01 {
			f = 0.01
			clipped++
		}
		return f
	}
	if v.RSigma > 0 {
		rF = make([][]float64, samples)
	}
	if v.CSigma > 0 {
		cF = make([][]float64, samples)
	}
	for s := 0; s < samples; s++ {
		if rF != nil {
			rF[s] = make([]float64, nets)
		}
		if cF != nil {
			cF[s] = make([]float64, nets)
		}
		for i := 0; i < nets; i++ {
			if rF != nil {
				rF[s][i] = draw(v.RSigma)
			}
			if cF != nil {
				cF[s][i] = draw(v.CSigma)
			}
		}
	}
	return rF, cF, clipped
}

// Analyze runs the multi-corner variation analysis of a design.
func Analyze(ctx context.Context, d *netlist.Design, opt Options) (*Report, error) {
	g, err := timing.NewGraph(d)
	if err != nil {
		return nil, err
	}
	return AnalyzeGraph(ctx, g, d.Name, opt)
}

// AnalyzeGraph is Analyze on a prebuilt timing graph (sharing its cached
// arena); name labels the report.
func AnalyzeGraph(ctx context.Context, g *timing.Graph, name string, opt Options) (*Report, error) {
	opt, err := opt.resolve()
	if err != nil {
		return nil, err
	}
	va, err := g.VarArena(opt.Threshold, opt.Required)
	if err != nil {
		return nil, err
	}
	eps := va.Endpoints()
	rF, cF, clipped := drawFactors(va.Nets(), opt.Samples, opt.Variation, opt.Seed)
	rep := &Report{
		Design:    name,
		Threshold: va.Threshold(),
		Samples:   opt.Samples,
		Seed:      opt.Seed,
		Variation: opt.Variation,
		Clipped:   clipped,
	}
	for _, c := range opt.Corners {
		sctx, op := trace.StartOp(ctx, opt.Obs, "mcd_corner_sweep", "corner", c.Name)
		cr, err := sweepCorner(sctx, va, c, eps, rF, cF, opt.Samples, opt.Workers)
		op.SetError(err)
		op.End()
		if err != nil {
			return nil, fmt.Errorf("mcd: corner %q: %w", c.Name, err)
		}
		rep.Corners = append(rep.Corners, *cr)
	}
	worst := math.Inf(1)
	for _, cr := range rep.Corners {
		if cr.NominalWNS < worst {
			worst = cr.NominalWNS
			rep.WorstCorner = cr.Corner.Name
		}
	}
	return rep, nil
}

// sweepCorner runs one corner: a nominal pass (no derating) on va itself,
// then the per-sample sweep fanned across workers, each on its own clone
// writing disjoint sample columns. All statistics are reduced sequentially
// afterwards, so the result is independent of the worker count.
func sweepCorner(ctx context.Context, va *timing.VarArena, c Corner, eps []timing.VarEndpoint, rF, cF [][]float64, samples, workers int) (*CornerResult, error) {
	if err := va.SetFactors(c.RScale, c.CScale, nil, nil); err != nil {
		return nil, err
	}
	if err := va.Propagate(ctx); err != nil {
		return nil, err
	}
	cr := &CornerResult{Corner: c, NominalWNS: math.Inf(1)}
	nomArr := make([]float64, len(eps))
	nomSlack := make([]float64, len(eps))
	for e, ep := range eps {
		nomArr[e] = va.Arrival(ep.Slot).Max
		nomSlack[e] = va.Slack(ep)
		if !math.IsInf(ep.Required, 1) {
			if nomSlack[e] < cr.NominalWNS {
				cr.NominalWNS = nomSlack[e]
			}
			if nomSlack[e] < 0 {
				cr.NominalTNS += nomSlack[e]
			}
		}
	}
	// Per-sample matrices: endpoint-major, sample columns written by whichever
	// worker owns the sample.
	arrMat := make([][]float64, len(eps))
	slackMat := make([][]float64, len(eps))
	for e := range eps {
		arrMat[e] = make([]float64, samples)
		slackMat[e] = make([]float64, samples)
	}
	wns := make([]float64, samples)
	tns := make([]float64, samples)
	crit := make([]int, samples)
	if workers > samples {
		workers = samples
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wa := va
			if workers > 1 {
				wa = va.Clone()
			}
			for s := w; s < samples; s += workers {
				var rNet, cNet []float64
				if rF != nil {
					rNet = rF[s]
				}
				if cF != nil {
					cNet = cF[s]
				}
				if err := wa.SetFactors(c.RScale, c.CScale, rNet, cNet); err != nil {
					errs[w] = err
					return
				}
				if err := wa.Propagate(ctx); err != nil {
					errs[w] = err
					return
				}
				sWNS, sTNS, sCrit := math.Inf(1), 0.0, -1
				for e, ep := range eps {
					arrMat[e][s] = wa.Arrival(ep.Slot).Max
					sl := wa.Slack(ep)
					slackMat[e][s] = sl
					if math.IsInf(ep.Required, 1) {
						continue
					}
					// Strict < keeps the lowest endpoint index on ties — the
					// deterministic criticality attribution.
					if sl < sWNS {
						sWNS, sCrit = sl, e
					}
					if sl < 0 {
						sTNS += sl
					}
				}
				wns[s], tns[s], crit[s] = sWNS, sTNS, sCrit
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	critCount := make([]int, len(eps))
	constrained := false
	for s := 0; s < samples; s++ {
		if crit[s] >= 0 {
			critCount[crit[s]]++
			constrained = true
		}
	}
	if constrained {
		d := distOf(wns)
		cr.WNS = &d
	}
	cr.TNS = distOf(tns)
	for e, ep := range eps {
		ed := EndpointDist{
			Net:            ep.Net,
			Output:         ep.Output,
			Required:       ep.Required,
			NominalArrival: nomArr[e],
			NominalSlack:   nomSlack[e],
			Arrival:        distOf(arrMat[e]),
			Criticality:    float64(critCount[e]) / float64(samples),
		}
		if !math.IsInf(ep.Required, 1) {
			d := distOf(slackMat[e])
			ed.Slack = &d
		}
		cr.Endpoints = append(cr.Endpoints, ed)
	}
	// Worst nominal slack first; unconstrained after, by descending nominal
	// arrival; names break ties — the timing.Report endpoint order.
	sort.SliceStable(cr.Endpoints, func(a, b int) bool {
		ea, eb := &cr.Endpoints[a], &cr.Endpoints[b]
		if ea.NominalSlack != eb.NominalSlack {
			return ea.NominalSlack < eb.NominalSlack
		}
		if ea.NominalArrival != eb.NominalArrival {
			return ea.NominalArrival > eb.NominalArrival
		}
		if ea.Net != eb.Net {
			return ea.Net < eb.Net
		}
		return ea.Output < eb.Output
	})
	return cr, nil
}
