package mcd

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/randnet"
	"repro/internal/timing"
)

// BenchmarkCornerSweep compares the two ways to evaluate one corner's Monte
// Carlo samples: the in-place arena sweep (SetFactors + re-propagate over
// flat columns) versus rebuilding an explicitly-scaled netlist and running a
// full analysis per sample — the internal/mc approach lifted naively to
// designs. Both paths are single-threaded so the ratio is per-sample work,
// not parallelism; scripts/bench_trajectory.sh records the ratio as
// corner_sweep_arena_vs_rebuild.
func BenchmarkCornerSweep(b *testing.B) {
	d := randnet.Design(rand.New(rand.NewSource(17)), randnet.DefaultDesignConfig(6, 4))
	const samples = 8
	const th, req = 0.5, 400.0
	v := Variation{RSigma: 0.05, CSigma: 0.05}
	corners := []Corner{{Name: "typ", RScale: 1, CScale: 1}}
	ctx := context.Background()

	b.Run("arena", func(b *testing.B) {
		g, err := timing.NewGraph(d)
		if err != nil {
			b.Fatal(err)
		}
		opt := Options{
			Samples: samples, Seed: 1, Variation: v, Corners: corners,
			Threshold: th, Required: req, Sequential: true,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeGraph(ctx, g, "bench", opt); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		rF, cF, _ := drawFactors(len(d.Nets), samples, v, 1)
		opt := timing.Options{Threshold: th, Required: req, K: -1, Sequential: true}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for s := 0; s < samples; s++ {
				rf := make([]float64, len(d.Nets))
				cf := make([]float64, len(d.Nets))
				for j := range rf {
					rf[j], cf[j] = rF[s][j], cF[s][j]
				}
				sd, err := ScaleDesign(d, rf, cf)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := timing.Analyze(ctx, sd, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
