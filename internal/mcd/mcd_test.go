package mcd

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/netlist"
	"repro/internal/randnet"
	"repro/internal/timing"
)

func testDesign(t *testing.T, seed int64, levels, width int) *netlist.Design {
	t.Helper()
	return randnet.Design(rand.New(rand.NewSource(seed)), randnet.DefaultDesignConfig(levels, width))
}

func uniform(n int, v float64) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = v
	}
	return f
}

func distClose(t *testing.T, ctxt string, got, want Dist, tol float64) {
	t.Helper()
	pairs := [][2]float64{
		{got.Mean, want.Mean}, {got.Std, want.Std},
		{got.Min, want.Min}, {got.Max, want.Max},
		{got.P50, want.P50}, {got.P95, want.P95}, {got.P99, want.P99},
	}
	names := []string{"mean", "std", "min", "max", "p50", "p95", "p99"}
	for i, p := range pairs {
		if math.Abs(p[0]-p[1]) > tol {
			t.Errorf("%s: %s = %.15g, want %.15g", ctxt, names[i], p[0], p[1])
		}
	}
}

// TestCornerSweepMatchesFullReanalysis is the tentpole soundness property:
// for several seeds, every corner×sample of the arena sweep must agree — to
// 1e-9 — with an independent full timing.Analyze of a netlist whose element
// values were explicitly rebuilt with the same factors, including the WNS/TNS
// distributions and the per-endpoint criticality counts.
func TestCornerSweepMatchesFullReanalysis(t *testing.T) {
	ctx := context.Background()
	const th, req = 0.6, 350.0
	const samples = 6
	v := Variation{RSigma: 0.06, CSigma: 0.09}
	for _, seed := range []int64{1, 2, 7} {
		d := testDesign(t, seed, 4, 2)
		rep, err := Analyze(ctx, d, Options{
			Samples: samples, Seed: seed, Variation: v,
			Threshold: th, Required: req, Sequential: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The reference replays the exact factor stream and endpoint order the
		// sweep used.
		g, err := timing.NewGraph(d)
		if err != nil {
			t.Fatal(err)
		}
		va, err := g.VarArena(th, req)
		if err != nil {
			t.Fatal(err)
		}
		eps := va.Endpoints()
		rF, cF, _ := drawFactors(len(d.Nets), samples, v, seed)
		for ci, c := range DefaultCorners() {
			cr := &rep.Corners[ci]
			if cr.Corner != c {
				t.Fatalf("seed %d: corner %d is %+v, want %+v", seed, ci, cr.Corner, c)
			}
			// Nominal: corner scales only.
			nomD, err := ScaleDesign(d, uniform(len(d.Nets), c.RScale), uniform(len(d.Nets), c.CScale))
			if err != nil {
				t.Fatal(err)
			}
			nomRep, err := timing.Analyze(ctx, nomD, timing.Options{Threshold: th, Required: req, K: -1, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(cr.NominalWNS-nomRep.WNS) > 1e-9 || math.Abs(cr.NominalTNS-nomRep.TNS) > 1e-9 {
				t.Errorf("seed %d corner %s: nominal WNS/TNS %g/%g, full analysis %g/%g",
					seed, c.Name, cr.NominalWNS, cr.NominalTNS, nomRep.WNS, nomRep.TNS)
			}
			// Per-sample full re-analysis of the explicitly-scaled netlist.
			arr := make([][]float64, len(eps))
			slack := make([][]float64, len(eps))
			for e := range eps {
				arr[e] = make([]float64, samples)
				slack[e] = make([]float64, samples)
			}
			wns := make([]float64, samples)
			tns := make([]float64, samples)
			critCount := make([]int, len(eps))
			for s := 0; s < samples; s++ {
				rf := uniform(len(d.Nets), c.RScale)
				cf := uniform(len(d.Nets), c.CScale)
				for i := range rf {
					if rF != nil {
						rf[i] *= rF[s][i]
					}
					if cF != nil {
						cf[i] *= cF[s][i]
					}
				}
				sd, err := ScaleDesign(d, rf, cf)
				if err != nil {
					t.Fatal(err)
				}
				sRep, err := timing.Analyze(ctx, sd, timing.Options{Threshold: th, Required: req, K: -1, Sequential: true})
				if err != nil {
					t.Fatal(err)
				}
				byKey := map[[2]string]timing.EndpointSlack{}
				for _, e := range sRep.Endpoints {
					byKey[[2]string{e.Net, e.Output}] = e
				}
				sWNS, sCrit := math.Inf(1), -1
				for e, ep := range eps {
					ref, ok := byKey[[2]string{ep.Net, ep.Output}]
					if !ok {
						t.Fatalf("endpoint %s/%s missing from scaled analysis", ep.Net, ep.Output)
					}
					arr[e][s] = ref.Arrival.Max
					slack[e][s] = ref.Slack
					if !math.IsInf(ep.Required, 1) {
						if ref.Slack < sWNS {
							sWNS, sCrit = ref.Slack, e
						}
						if ref.Slack < 0 {
							tns[s] += ref.Slack
						}
					}
				}
				wns[s] = sWNS
				if sCrit >= 0 {
					critCount[sCrit]++
				}
			}
			if cr.WNS != nil {
				distClose(t, "WNS dist", *cr.WNS, distOf(wns), 1e-9)
			}
			distClose(t, "TNS dist", cr.TNS, distOf(tns), 1e-9)
			// Endpoint distributions and criticality counts, matched by key
			// (the report is re-sorted by nominal slack).
			wantByKey := map[[2]string]EndpointDist{}
			for e, ep := range eps {
				want := EndpointDist{
					Arrival:     distOf(arr[e]),
					Criticality: float64(critCount[e]) / samples,
				}
				if !math.IsInf(ep.Required, 1) {
					sd := distOf(slack[e])
					want.Slack = &sd
				}
				wantByKey[[2]string{ep.Net, ep.Output}] = want
			}
			for _, e := range cr.Endpoints {
				want, ok := wantByKey[[2]string{e.Net, e.Output}]
				if !ok {
					t.Fatalf("report endpoint %s/%s not in reference", e.Net, e.Output)
				}
				ctxt := "seed " + string(rune('0'+seed)) + " corner " + c.Name + " " + e.Net + "/" + e.Output
				distClose(t, ctxt+" arrival", e.Arrival, want.Arrival, 1e-9)
				if (e.Slack == nil) != (want.Slack == nil) {
					t.Errorf("%s: slack dist presence mismatch", ctxt)
				} else if e.Slack != nil {
					distClose(t, ctxt+" slack", *e.Slack, *want.Slack, 1e-9)
				}
				if e.Criticality != want.Criticality {
					t.Errorf("%s: criticality %g, reference %g", ctxt, e.Criticality, want.Criticality)
				}
			}
		}
	}
}

// TestDeterministicAcrossWorkers: one seed must produce bit-identical
// reports at any worker count, including the sequential path — workers write
// disjoint sample columns and all statistics reduce sequentially.
func TestDeterministicAcrossWorkers(t *testing.T) {
	d := testDesign(t, 11, 5, 3)
	opt := Options{
		Samples: 24, Seed: 5, Variation: Variation{RSigma: 0.08, CSigma: 0.05},
		Threshold: 0.55, Required: 500,
	}
	base := opt
	base.Sequential = true
	want, err := Analyze(context.Background(), d, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		o := opt
		o.Workers = workers
		got, err := Analyze(context.Background(), d, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: report diverged from sequential baseline", workers)
		}
	}
}

// TestCriticalityIsDistribution: criticality sums to 1 over each corner's
// endpoints (every sample has exactly one WNS endpoint when anything is
// constrained), and is reported per endpoint.
func TestCriticalityIsDistribution(t *testing.T) {
	d := testDesign(t, 3, 4, 3)
	rep, err := Analyze(context.Background(), d, Options{
		Samples: 40, Seed: 9, Variation: Variation{RSigma: 0.1, CSigma: 0.1},
		Required: 400, Sequential: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range rep.Corners {
		if cr.WNS == nil {
			t.Fatalf("corner %s unconstrained; test design should have endpoints", cr.Corner.Name)
		}
		total := 0.0
		for _, e := range cr.Endpoints {
			if e.Criticality < 0 || e.Criticality > 1 {
				t.Errorf("criticality %g outside [0,1]", e.Criticality)
			}
			total += e.Criticality
		}
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("corner %s: criticalities sum to %g, want 1", cr.Corner.Name, total)
		}
	}
}

// TestClippedSharedAcrossCorners: the factor draws (and so the clip count)
// are made once per sample set and shared by every corner; at absurd sigma
// the count is nonzero and identical whatever the corner list.
func TestClippedSharedAcrossCorners(t *testing.T) {
	d := testDesign(t, 4, 3, 2)
	high := Options{Samples: 50, Seed: 2, Variation: Variation{RSigma: 0.9, CSigma: 0.9}, Required: 300, Sequential: true}
	rep, err := Analyze(context.Background(), d, high)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clipped == 0 {
		t.Error("90% sigma clipped no draws")
	}
	one := high
	one.Corners = []Corner{{Name: "typ", RScale: 1, CScale: 1}}
	rep1, err := Analyze(context.Background(), d, one)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Clipped != rep.Clipped {
		t.Errorf("clip count depends on corner list: %d vs %d", rep1.Clipped, rep.Clipped)
	}
}

func TestOptionValidation(t *testing.T) {
	d := testDesign(t, 1, 2, 2)
	ctx := context.Background()
	if _, err := Analyze(ctx, d, Options{Samples: -1}); err == nil {
		t.Error("negative samples accepted")
	}
	if _, err := Analyze(ctx, d, Options{Variation: Variation{RSigma: -0.1}}); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := Analyze(ctx, d, Options{Corners: []Corner{{Name: "bad", RScale: 0, CScale: 1}}}); err == nil {
		t.Error("zero corner scale accepted")
	}
	if _, err := Analyze(ctx, d, Options{Corners: []Corner{}}); err == nil {
		t.Error("empty corner list accepted")
	}
	if _, err := Analyze(ctx, d, Options{Threshold: 1.2}); err == nil {
		t.Error("threshold 1.2 accepted")
	}
}

func TestScaleDesignValidation(t *testing.T) {
	d := testDesign(t, 1, 2, 2)
	if _, err := ScaleDesign(d, make([]float64, 1), nil); err == nil && len(d.Nets) != 1 {
		t.Error("short rf accepted")
	}
	// Identity scaling reproduces the analysis exactly.
	sd, err := ScaleDesign(d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := timing.Analyze(context.Background(), d, timing.Options{Required: 300, K: -1, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := timing.Analyze(context.Background(), sd, timing.Options{Required: 300, K: -1, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Endpoints, b.Endpoints) {
		t.Error("identity ScaleDesign changed the analysis")
	}
}
