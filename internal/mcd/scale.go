package mcd

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/rctree"
)

// ScaleDesign rebuilds every net tree of d with per-net multiplicative
// factors: net i's resistances scale by rf[i], its capacitances (edge and
// grounded) by cf[i]. Stages, requires, and output designations carry over
// unchanged; stage delays are gate-intrinsic and do not scale. A nil factor
// slice means 1 everywhere; otherwise the slice must have one entry per net,
// in design net order.
//
// This is the reference construction the arena sweep must agree with — the
// property tests check timing.VarArena.SetFactors against a full analysis of
// the ScaleDesign'd netlist — and the explicit-corner path for callers that
// need a materialized netlist (closure's shadow corner sessions).
func ScaleDesign(d *netlist.Design, rf, cf []float64) (*netlist.Design, error) {
	if rf != nil && len(rf) != len(d.Nets) {
		return nil, fmt.Errorf("mcd: %d R factors for %d nets", len(rf), len(d.Nets))
	}
	if cf != nil && len(cf) != len(d.Nets) {
		return nil, fmt.Errorf("mcd: %d C factors for %d nets", len(cf), len(d.Nets))
	}
	out := &netlist.Design{Name: d.Name, Stages: d.Stages, Requires: d.Requires}
	out.Nets = make([]netlist.DesignNet, len(d.Nets))
	for i := range d.Nets {
		rfi, cfi := 1.0, 1.0
		if rf != nil {
			rfi = rf[i]
		}
		if cf != nil {
			cfi = cf[i]
		}
		t, err := scaleTree(d.Nets[i].Tree, rfi, cfi)
		if err != nil {
			return nil, fmt.Errorf("mcd: net %q: %w", d.Nets[i].Name, err)
		}
		out.Nets[i] = netlist.DesignNet{Name: d.Nets[i].Name, Tree: t}
	}
	return out, nil
}

// scaleTree rebuilds one tree with uniform R and C factors, preserving node
// names and the output designation order.
func scaleTree(t *rctree.Tree, rf, cf float64) (*rctree.Tree, error) {
	b := rctree.NewBuilder(t.Name(rctree.Root))
	ids := map[rctree.NodeID]rctree.NodeID{rctree.Root: rctree.Root}
	var buildErr error
	t.Walk(func(id rctree.NodeID) {
		if buildErr != nil {
			return
		}
		if id == rctree.Root {
			if c := t.NodeCap(id); c > 0 {
				b.Capacitor(rctree.Root, c*cf)
			}
			return
		}
		kind, r, c := t.Edge(id)
		switch kind {
		case rctree.EdgeResistor:
			ids[id] = b.Resistor(ids[t.Parent(id)], t.Name(id), r*rf)
		case rctree.EdgeLine:
			ids[id] = b.Line(ids[t.Parent(id)], t.Name(id), r*rf, c*cf)
		default:
			buildErr = fmt.Errorf("unexpected edge kind at node %q", t.Name(id))
			return
		}
		if nc := t.NodeCap(id); nc > 0 {
			b.Capacitor(ids[id], nc*cf)
		}
	})
	if buildErr != nil {
		return nil, buildErr
	}
	for _, o := range t.Outputs() {
		b.Output(ids[o])
	}
	return b.Build()
}
