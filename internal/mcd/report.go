package mcd

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// fmtG renders a float compactly, with +Inf as "-" (unconstrained).
func fmtG(v float64) string {
	if math.IsInf(v, 0) {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Summary renders the fixed-width multi-corner report: a header, then per
// corner the nominal and sampled WNS/TNS and the endpoint table (worst
// nominal slack first). For slack the informative tail is the low one —
// Min is the worst draw seen — while criticality says where the WNS lives.
func (r *Report) Summary() string {
	var b strings.Builder
	name := r.Design
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "design %s: %d corners, %d samples/corner, threshold %g, seed %d\n",
		name, len(r.Corners), r.Samples, r.Threshold, r.Seed)
	fmt.Fprintf(&b, "variation: rSigma %g, cSigma %g", r.Variation.RSigma, r.Variation.CSigma)
	if r.Clipped > 0 {
		fmt.Fprintf(&b, " (%d clipped draws: low tail truncated, results biased up)", r.Clipped)
	}
	b.WriteByte('\n')
	if r.WorstCorner != "" {
		fmt.Fprintf(&b, "worst corner: %s\n", r.WorstCorner)
	}
	for i := range r.Corners {
		cr := &r.Corners[i]
		fmt.Fprintf(&b, "\ncorner %s (R x%g, C x%g): nominal WNS %s TNS %s",
			cr.Corner.Name, cr.Corner.RScale, cr.Corner.CScale,
			fmtG(cr.NominalWNS), fmtG(cr.NominalTNS))
		if cr.WNS != nil {
			fmt.Fprintf(&b, "   WNS mean %s std %s min %s", fmtG(cr.WNS.Mean), fmtG(cr.WNS.Std), fmtG(cr.WNS.Min))
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%-12s %-10s %10s %10s %10s %10s %10s %10s %6s\n",
			"net", "output", "required", "nom.slack", "slk.mean", "slk.std", "slk.min", "arr.mean", "crit%")
		for _, e := range cr.Endpoints {
			mean, std, min := "-", "-", "-"
			if e.Slack != nil {
				mean, std, min = fmtG(e.Slack.Mean), fmtG(e.Slack.Std), fmtG(e.Slack.Min)
			}
			fmt.Fprintf(&b, "%-12s %-10s %10s %10s %10s %10s %10s %10s %6.1f\n",
				e.Net, e.Output, fmtG(e.Required), fmtG(e.NominalSlack),
				mean, std, min, fmtG(e.Arrival.Mean), 100*e.Criticality)
		}
	}
	return b.String()
}

// WriteCSV emits one row per corner × endpoint. Unconstrained endpoints
// leave the required/slack columns empty.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"corner", "net", "output", "required", "nominal_slack", "criticality",
		"arrival_mean", "arrival_std", "arrival_p50", "arrival_p95", "arrival_p99",
		"slack_mean", "slack_std", "slack_min", "slack_p50",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("mcd: csv: %w", err)
	}
	g := func(v float64) string {
		if math.IsInf(v, 0) {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for i := range r.Corners {
		cr := &r.Corners[i]
		for _, e := range cr.Endpoints {
			row := []string{
				cr.Corner.Name, e.Net, e.Output,
				g(e.Required), g(e.NominalSlack),
				strconv.FormatFloat(e.Criticality, 'g', -1, 64),
				g(e.Arrival.Mean), g(e.Arrival.Std), g(e.Arrival.P50), g(e.Arrival.P95), g(e.Arrival.P99),
			}
			if e.Slack != nil {
				row = append(row, g(e.Slack.Mean), g(e.Slack.Std), g(e.Slack.Min), g(e.Slack.P50))
			} else {
				row = append(row, "", "", "", "")
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("mcd: csv: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Wire shapes: +Inf is not representable in JSON, so unconstrained
// requireds/slacks ride as nil pointers (the timing.Report convention).
type jsonEndpointDist struct {
	Net            string   `json:"net"`
	Output         string   `json:"output"`
	Required       *float64 `json:"required,omitempty"`
	NominalArrival float64  `json:"nominalArrival"`
	NominalSlack   *float64 `json:"nominalSlack,omitempty"`
	Arrival        Dist     `json:"arrival"`
	Slack          *Dist    `json:"slack,omitempty"`
	Criticality    float64  `json:"criticality"`
}

type jsonCornerResult struct {
	Corner     Corner             `json:"corner"`
	NominalWNS *float64           `json:"nominalWns,omitempty"`
	NominalTNS float64            `json:"nominalTns"`
	WNS        *Dist              `json:"wns,omitempty"`
	TNS        Dist               `json:"tns"`
	Endpoints  []jsonEndpointDist `json:"endpoints"`
}

type jsonReport struct {
	Design      string             `json:"design,omitempty"`
	Threshold   float64            `json:"threshold"`
	Samples     int                `json:"samples"`
	Seed        int64              `json:"seed"`
	Variation   Variation          `json:"variation"`
	Clipped     int                `json:"clipped"`
	WorstCorner string             `json:"worstCorner,omitempty"`
	Corners     []jsonCornerResult `json:"corners"`
}

// finitePtr maps +Inf (unconstrained) to nil for the JSON wire form.
func finitePtr(v float64) *float64 {
	if math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func (r *Report) wire() jsonReport {
	out := jsonReport{
		Design: r.Design, Threshold: r.Threshold,
		Samples: r.Samples, Seed: r.Seed,
		Variation: r.Variation, Clipped: r.Clipped,
		WorstCorner: r.WorstCorner,
	}
	for i := range r.Corners {
		cr := &r.Corners[i]
		jc := jsonCornerResult{
			Corner:     cr.Corner,
			NominalWNS: finitePtr(cr.NominalWNS),
			NominalTNS: cr.NominalTNS,
			WNS:        cr.WNS,
			TNS:        cr.TNS,
		}
		for _, e := range cr.Endpoints {
			jc.Endpoints = append(jc.Endpoints, jsonEndpointDist{
				Net: e.Net, Output: e.Output,
				Required:       finitePtr(e.Required),
				NominalArrival: e.NominalArrival,
				NominalSlack:   finitePtr(e.NominalSlack),
				Arrival:        e.Arrival,
				Slack:          e.Slack,
				Criticality:    e.Criticality,
			})
		}
		out.Corners = append(out.Corners, jc)
	}
	return out
}

// WriteJSON emits the report as indented JSON with a stable schema.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.wire()); err != nil {
		return fmt.Errorf("mcd: json: %w", err)
	}
	return nil
}

// MarshalJSON makes the report JSON-safe anywhere it is embedded (the
// rcserve corners endpoint embeds it in its envelope).
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.wire())
}
