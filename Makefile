# Developer entry points; CI runs the same commands (see
# .github/workflows/ci.yml).

.PHONY: test race bench bench-smoke bench-trajectory cover golden vet clean

test:
	go test ./...

# Remove generated droppings (the coverage profile and compiled test
# binaries). scripts/coverage.sh also cleans up after itself, so cover.out
# never outlives the run that produced it; this target is the guard for
# anything that still leaks.
clean:
	rm -f cover.out *.test

race:
	go test -race ./...

vet:
	go vet ./...

# Per-package coverage summary over internal/... with the CI floor (75%).
cover:
	sh scripts/coverage.sh

# Refresh the committed golden report files after an intentional format
# change to cmd/statime output.
golden:
	go test ./cmd/statime -run TestGolden -update

# Full benchmark pass over every package.
bench:
	go test -run '^$$' -bench . -benchtime 100x ./...

# One-iteration compile-and-run of every benchmark, the CI rot guard.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...

# Refresh BENCH_incremental.json and BENCH_timing.json (the perf
# trajectories: full-vs-incremental edits, sequential-vs-parallel chip
# slack, full-reanalyze-vs-dirty-cone ECO re-timing).
bench-trajectory:
	sh scripts/bench_trajectory.sh
