# Developer entry points; CI runs the same commands (see
# .github/workflows/ci.yml).

.PHONY: test race bench bench-smoke bench-trajectory vet

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# Full benchmark pass over every package.
bench:
	go test -run '^$$' -bench . -benchtime 100x ./...

# One-iteration compile-and-run of every benchmark, the CI rot guard.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...

# Refresh BENCH_incremental.json (the full-vs-incremental perf trajectory).
bench-trajectory:
	sh scripts/bench_trajectory.sh
